// Determinism contract of the parallel blocking front-end: every
// ExecutionContext-driven stage (MinHash signatures, sharded LSH
// insertion, speculative cover assembly, boundary expansion, candidate
// generation) must produce bit-identical output for ANY thread count and
// ANY shard count — parallelism may change when work happens, never what
// is computed. These tests pin that contract for both cover builders and
// for Dataset::BuildCandidatePairs, mirroring the RunGrid==RunSmp style of
// grid_consistency_test.cc at the blocking layer.

#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/blocking_tokens.h"
#include "blocking/lsh_cover.h"
#include "core/canopy.h"
#include "core/cover.h"
#include "core/cover_builder.h"
#include "data/bib_generator.h"
#include "text/token_index.h"
#include "util/execution_context.h"

namespace cem {
namespace {

using core::BlockingStrategy;
using core::Cover;

/// Thread counts exercised everywhere: serial, oversubscribed small, and
/// whatever this host actually has.
std::vector<uint32_t> ThreadCounts() {
  return {1, 4, std::max(1u, std::thread::hardware_concurrency())};
}

std::unique_ptr<data::Dataset> MakeCorpus(uint64_t seed, double scale = 0.08) {
  data::BibConfig config = data::BibConfig::DblpLike(scale);
  config.seed = seed;
  return data::GenerateBibDataset(config);
}

void ExpectSameCover(const Cover& reference, const Cover& cover,
                     const std::string& label) {
  ASSERT_EQ(reference.size(), cover.size()) << label;
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference.neighborhood(i).entities,
              cover.neighborhood(i).entities)
        << label << ", neighborhood " << i;
  }
}

class CoverDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoverDeterminism, CanopyCoverIdenticalAcrossThreadCounts) {
  const auto dataset = MakeCorpus(GetParam());
  const auto builder = blocking::MakeCoverBuilder(BlockingStrategy::kCanopy);
  ExecutionContext serial(1);
  const Cover reference = builder->Build(*dataset, serial);
  for (uint32_t threads : ThreadCounts()) {
    ExecutionContext ctx(threads);
    ExpectSameCover(reference, builder->Build(*dataset, ctx),
                    "canopy, " + std::to_string(threads) + " threads");
  }
}

TEST_P(CoverDeterminism, LshCoverIdenticalAcrossThreadAndShardCounts) {
  const auto dataset = MakeCorpus(GetParam());
  const auto builder = blocking::MakeCoverBuilder(BlockingStrategy::kLsh);
  ExecutionContext serial(1, /*num_shards=*/1);
  const Cover reference = builder->Build(*dataset, serial);
  for (uint32_t threads : ThreadCounts()) {
    for (uint32_t shards : {1u, 4u, 32u}) {
      ExecutionContext ctx(threads, shards);
      ExpectSameCover(reference, builder->Build(*dataset, ctx),
                      "lsh, " + std::to_string(threads) + " threads, " +
                          std::to_string(shards) + " shards");
    }
  }
}

TEST_P(CoverDeterminism, WorkCountersIdenticalAcrossThreadCounts) {
  // The speculative scan batches are a fixed size, so even the *work*
  // counters (not just the covers) are thread-count-independent.
  const auto dataset = MakeCorpus(GetParam());
  for (const BlockingStrategy strategy :
       {BlockingStrategy::kCanopy, BlockingStrategy::kLsh}) {
    const auto builder = blocking::MakeCoverBuilder(strategy);
    ExecutionContext serial(1);
    core::BlockingStats reference;
    builder->Build(*dataset, serial, &reference);
    EXPECT_GT(reference.pairs_considered, 0u);
    for (uint32_t threads : ThreadCounts()) {
      ExecutionContext ctx(threads);
      core::BlockingStats stats;
      builder->Build(*dataset, ctx, &stats);
      EXPECT_EQ(stats.pairs_considered, reference.pairs_considered)
          << builder->name() << ", " << threads << " threads";
    }
  }
}

TEST_P(CoverDeterminism, CandidatePairsIdenticalAcrossThreadCounts) {
  // Trigram candidate generation: same pairs, same levels, any context.
  data::BibConfig config = data::BibConfig::DblpLike(0.08);
  config.seed = GetParam();
  ExecutionContext serial(1);
  const auto reference = data::GenerateBibDataset(config, {}, serial);
  for (uint32_t threads : ThreadCounts()) {
    ExecutionContext ctx(threads);
    const auto dataset = data::GenerateBibDataset(config, {}, ctx);
    ASSERT_EQ(dataset->num_candidate_pairs(),
              reference->num_candidate_pairs());
    for (data::PairId id = 0; id < dataset->num_candidate_pairs(); ++id) {
      EXPECT_EQ(dataset->candidate_pair(id).pair,
                reference->candidate_pair(id).pair);
      EXPECT_EQ(dataset->candidate_pair(id).level,
                reference->candidate_pair(id).level);
    }
  }
}

TEST_P(CoverDeterminism, LshCandidatePairsIdenticalAcrossContexts) {
  // The use_lsh generator: identical output for any thread/shard count.
  data::BibConfig config = data::BibConfig::DblpLike(0.08);
  config.seed = GetParam();
  data::CandidateOptions options;
  options.use_lsh = true;
  ExecutionContext serial(1, /*num_shards=*/1);
  const auto reference = data::GenerateBibDataset(config, options, serial);
  for (uint32_t threads : ThreadCounts()) {
    for (uint32_t shards : {1u, 16u}) {
      ExecutionContext ctx(threads, shards);
      const auto dataset = data::GenerateBibDataset(config, options, ctx);
      ASSERT_EQ(dataset->num_candidate_pairs(),
                reference->num_candidate_pairs())
          << threads << " threads, " << shards << " shards";
      for (data::PairId id = 0; id < dataset->num_candidate_pairs(); ++id) {
        EXPECT_EQ(dataset->candidate_pair(id).pair,
                  reference->candidate_pair(id).pair);
      }
    }
  }
}

TEST_P(CoverDeterminism, TokenIndexIdenticalAcrossThreadAndShardCounts) {
  // The sharded TokenIndex build: candidates AND the num_scored work
  // counter must match the serial single-shard AddDocument loop for any
  // thread count and any shard count.
  const auto dataset = MakeCorpus(GetParam());
  const std::vector<data::EntityId>& refs = dataset->author_refs();
  std::vector<std::vector<std::string>> token_sets(refs.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    token_sets[i] = blocking::AuthorBlockingTokens(dataset->entity(refs[i]));
  }
  text::TokenIndex reference;
  for (size_t i = 0; i < refs.size(); ++i) {
    reference.AddDocument(static_cast<uint32_t>(i), token_sets[i]);
  }
  for (uint32_t threads : ThreadCounts()) {
    for (uint32_t shards : {1u, 4u, 32u}) {
      ExecutionContext ctx(threads, shards);
      text::TokenIndex index(ctx.num_token_shards());
      index.AddDocuments(token_sets, ctx);
      ASSERT_EQ(index.num_documents(), reference.num_documents());
      EXPECT_EQ(index.num_tokens(), reference.num_tokens());
      EXPECT_EQ(index.num_postings(), reference.num_postings());
      for (uint32_t doc = 0; doc < refs.size(); ++doc) {
        size_t scored = 0;
        size_t reference_scored = 0;
        const auto candidates = index.Candidates(doc, 0.3, &scored);
        const auto expected =
            reference.Candidates(doc, 0.3, &reference_scored);
        EXPECT_EQ(scored, reference_scored)
            << threads << " threads, " << shards << " shards, doc " << doc;
        ASSERT_EQ(candidates.size(), expected.size())
            << threads << " threads, " << shards << " shards, doc " << doc;
        for (size_t i = 0; i < candidates.size(); ++i) {
          EXPECT_EQ(candidates[i].doc_id, expected[i].doc_id);
          EXPECT_EQ(candidates[i].score, expected[i].score);
        }
      }
    }
  }
}

TEST_P(CoverDeterminism, PatchPairCoverageIdenticalAcrossThreadCounts) {
  // The parallel totality patch: patched covers AND the PatchStats
  // counters must be thread-count-independent, for the raw cover of
  // either builder (raw covers leave the most split pairs to repair).
  const auto dataset = MakeCorpus(GetParam());
  for (const BlockingStrategy strategy :
       {BlockingStrategy::kCanopy, BlockingStrategy::kLsh}) {
    Cover raw;
    if (strategy == BlockingStrategy::kCanopy) {
      core::CanopyOptions options;
      options.ensure_pair_coverage = false;
      options.expand_boundary = false;
      raw = core::BuildCanopyCover(*dataset, options);
    } else {
      blocking::LshCoverOptions options;
      options.ensure_pair_coverage = false;
      options.expand_boundary = false;
      raw = blocking::BuildLshCover(*dataset, options);
    }
    ExecutionContext serial(1);
    Cover reference = raw;
    core::PatchStats reference_stats;
    core::PatchPairCoverage(*dataset, reference, serial, &reference_stats);
    EXPECT_TRUE(reference.CandidatePairCoverage(*dataset) == 1.0);
    for (uint32_t threads : ThreadCounts()) {
      ExecutionContext ctx(threads);
      Cover patched = raw;
      core::PatchStats stats;
      core::PatchPairCoverage(*dataset, patched, ctx, &stats);
      const std::string label = core::BlockingStrategyName(strategy) +
                                std::string(", ") + std::to_string(threads) +
                                " threads";
      ExpectSameCover(reference, patched, label);
      EXPECT_EQ(stats.pairs_patched, reference_stats.pairs_patched) << label;
      EXPECT_EQ(stats.pairs_rechecked, reference_stats.pairs_rechecked)
          << label;
    }
  }
}

TEST_P(CoverDeterminism, PatchPairCoverageMatchesNaiveReference) {
  // Pins the CoverMembership (sorted-vector) representation against the
  // textbook serial algorithm it replaced: per-entity append-only home
  // lists, nested linear Together scans, repairs into the front (first)
  // home of the pair's first endpoint. Covers and the patched count must
  // be bit-identical.
  const auto dataset = MakeCorpus(GetParam());
  blocking::LshCoverOptions options;
  options.ensure_pair_coverage = false;
  options.expand_boundary = false;
  const Cover raw = blocking::BuildLshCover(*dataset, options);

  Cover naive = raw;
  size_t naive_patched = 0;
  {
    std::unordered_map<data::EntityId, std::vector<size_t>> homes;
    for (size_t i = 0; i < naive.size(); ++i) {
      for (data::EntityId e : naive.neighborhood(i).entities) {
        homes[e].push_back(i);
      }
    }
    const auto together = [&homes](data::EntityId a, data::EntityId b) {
      const auto it_a = homes.find(a);
      const auto it_b = homes.find(b);
      if (it_a == homes.end() || it_b == homes.end()) return false;
      for (size_t ha : it_a->second) {
        for (size_t hb : it_b->second) {
          if (ha == hb) return true;
        }
      }
      return false;
    };
    for (const data::CandidatePair& cp : dataset->candidate_pairs()) {
      if (together(cp.pair.a, cp.pair.b)) continue;
      const size_t home = homes.at(cp.pair.a).front();
      naive.AddEntityTo(home, cp.pair.b);
      homes[cp.pair.b].push_back(home);
      ++naive_patched;
    }
  }

  Cover patched = raw;
  core::PatchStats stats;
  core::PatchPairCoverage(*dataset, patched, ExecutionContext::Default(),
                          &stats);
  ExpectSameCover(naive, patched, "naive reference");
  EXPECT_EQ(stats.pairs_patched, naive_patched);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, CoverDeterminism,
                         ::testing::Range<uint64_t>(7100, 7106));

TEST(LshCandidateGeneration, KeepsNearAllTrigramPairsOnNoisyCorpus) {
  // The banding S-curve (32x2, knee ~0.2) sits well below the 0.25 trigram
  // overlap prefilter, so the sub-quadratic generator should retain almost
  // all of the exact path's candidate pairs.
  const auto exact = MakeCorpus(424242, 0.15);
  data::BibConfig config = data::BibConfig::DblpLike(0.15);
  config.seed = 424242;
  data::CandidateOptions options;
  options.use_lsh = true;
  const auto lsh = data::GenerateBibDataset(config, options);
  ASSERT_GT(exact->num_candidate_pairs(), 0u);
  size_t kept = 0;
  for (const data::CandidatePair& cp : exact->candidate_pairs()) {
    if (lsh->FindCandidatePair(cp.pair.a, cp.pair.b).has_value()) ++kept;
  }
  const double recall =
      static_cast<double>(kept) /
      static_cast<double>(exact->num_candidate_pairs());
  EXPECT_GE(recall, 0.9) << kept << "/" << exact->num_candidate_pairs();
}

}  // namespace
}  // namespace cem
