// Bit-identity contract of the SIMD hot-path kernels: every SimdLevel is
// an execution strategy, never a semantic. These tests pin (1) the kernels
// against the historical scalar formulas they replaced (copied verbatim
// below), (2) AVX2 against scalar on adversarial random inputs, and
// (3) end-to-end covers against a forced-scalar serial reference for every
// level x thread count x shard count — the blocking-layer analogue of
// cover_determinism_test.cc with the instruction set as one more axis.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/blocking_tokens.h"
#include "blocking/lsh_cover.h"
#include "blocking/minhash.h"
#include "blocking/minhash_simd.h"
#include "core/canopy.h"
#include "core/cover.h"
#include "core/cover_builder.h"
#include "data/bib_generator.h"
#include "text/token_arena.h"
#include "util/execution_context.h"
#include "util/hash.h"
#include "util/random.h"

namespace cem {
namespace {

using blocking::MinHasher;
using blocking::SimdLevel;
using core::BlockingStrategy;
using core::Cover;

/// Levels this build + CPU can actually run (scalar always qualifies).
std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (blocking::SimdLevelSupported(SimdLevel::kAvx2)) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

/// Restores the CEM_SIMD/cpuid dispatch decision on scope exit.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) {
    blocking::internal_simd::SetActiveSimdLevelForTesting(level);
  }
  ~ScopedSimdLevel() {
    blocking::internal_simd::ResetActiveSimdLevelForTesting();
  }
};

/// The pre-refactor MinHash inner loop, copied verbatim from the historical
/// blocking/minhash.cc: per-token FNV-1a base hash, per-salt XOR + SplitMix64,
/// running min. The batched kernels must reproduce it bit-for-bit.
std::vector<uint64_t> LegacySignature(const std::vector<std::string>& tokens,
                                      const std::vector<uint64_t>& salts) {
  std::vector<uint64_t> signature(salts.size(), MinHasher::kEmptySlot);
  for (const std::string& token : tokens) {
    const uint64_t base = Fnv1a64(token);
    for (size_t i = 0; i < salts.size(); ++i) {
      const uint64_t h = Mix64(base ^ salts[i]);
      if (h < signature[i]) signature[i] = h;
    }
  }
  return signature;
}

TEST(MinHashKernel, ScalarMatchesLegacyFormulaOnRandomHashes) {
  Rng rng(0x51u);
  for (int round = 0; round < 50; ++round) {
    const size_t num_tokens = rng.NextBounded(40);
    const size_t num_salts = 1 + rng.NextBounded(67);
    std::vector<uint64_t> hashes(num_tokens);
    std::vector<uint64_t> salts(num_salts);
    for (uint64_t& h : hashes) h = rng.Next();
    for (uint64_t& s : salts) s = rng.Next();

    std::vector<uint64_t> expected(num_salts, MinHasher::kEmptySlot);
    for (uint64_t base : hashes) {
      for (size_t i = 0; i < num_salts; ++i) {
        const uint64_t h = Mix64(base ^ salts[i]);
        if (h < expected[i]) expected[i] = h;
      }
    }

    std::vector<uint64_t> out(num_salts, 0);
    blocking::simd::MinHashSignature(hashes.data(), num_tokens, salts.data(),
                                     num_salts, out.data(),
                                     SimdLevel::kScalar);
    EXPECT_EQ(out, expected) << "round " << round;
  }
}

TEST(MinHashKernel, EmptyTokenSetYieldsEmptySlots) {
  for (SimdLevel level : SupportedLevels()) {
    std::vector<uint64_t> salts = {1, 2, 3, 4, 5, 6, 7};
    std::vector<uint64_t> out(salts.size(), 0);
    blocking::simd::MinHashSignature(nullptr, 0, salts.data(), salts.size(),
                                     out.data(), level);
    for (uint64_t component : out) {
      EXPECT_EQ(component, MinHasher::kEmptySlot)
          << blocking::SimdLevelName(level);
    }
  }
}

TEST(MinHashKernel, Avx2MatchesScalarOnAdversarialSizes) {
  if (!blocking::SimdLevelSupported(SimdLevel::kAvx2)) {
    GTEST_SKIP() << "AVX2 kernels not supported on this build/CPU";
  }
  Rng rng(0x52u);
  // Sweep salt counts around the vector width (4 lanes) so remainder
  // handling is exercised: 1..9 plus the real configuration sizes.
  std::vector<size_t> salt_counts = {1, 2, 3, 4, 5, 6, 7, 8, 9, 31, 64, 127};
  for (size_t num_salts : salt_counts) {
    for (size_t num_tokens : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                              size_t{17}, size_t{100}}) {
      std::vector<uint64_t> hashes(num_tokens);
      std::vector<uint64_t> salts(num_salts);
      for (uint64_t& h : hashes) h = rng.Next();
      for (uint64_t& s : salts) s = rng.Next();
      // Bias some inputs toward the top of the 64-bit range: the unsigned
      // min emulation (sign-flip + signed compare) is exactly what a
      // naive signed compare would get wrong for values >= 2^63.
      for (uint64_t& h : hashes) {
        if (rng.NextBernoulli(0.3)) h |= 0x8000000000000000ULL;
      }

      std::vector<uint64_t> scalar(num_salts, 0);
      std::vector<uint64_t> avx2(num_salts, 0);
      blocking::simd::MinHashSignature(hashes.data(), num_tokens, salts.data(),
                                       num_salts, scalar.data(),
                                       SimdLevel::kScalar);
      blocking::simd::MinHashSignature(hashes.data(), num_tokens, salts.data(),
                                       num_salts, avx2.data(),
                                       SimdLevel::kAvx2);
      EXPECT_EQ(avx2, scalar)
          << num_tokens << " tokens, " << num_salts << " salts";
    }
  }
}

TEST(CountEqualKernel, AllLevelsMatchNaiveLoop) {
  Rng rng(0x53u);
  for (int round = 0; round < 50; ++round) {
    const size_t n = rng.NextBounded(130);
    std::vector<uint64_t> a(n);
    std::vector<uint64_t> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Next();
      // Force a high equality rate so both branches are exercised.
      b[i] = rng.NextBernoulli(0.5) ? a[i] : rng.Next();
    }
    size_t expected = 0;
    for (size_t i = 0; i < n; ++i) {
      if (a[i] == b[i]) ++expected;
    }
    for (SimdLevel level : SupportedLevels()) {
      EXPECT_EQ(blocking::simd::CountEqual(a.data(), b.data(), n, level),
                expected)
          << blocking::SimdLevelName(level) << ", n=" << n;
    }
  }
}

TEST(MinHasherEquivalence, SignatureMatchesLegacyStringImplementation) {
  Rng rng(0x54u);
  const MinHasher hasher;
  const std::vector<std::string> pool = {"doe", "smi", "mit", "ith", "j|do",
                                         "a|sm", "ng",   "wan", "ang", "li"};
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    for (int round = 0; round < 30; ++round) {
      std::vector<std::string> tokens;
      const size_t count = rng.NextBounded(8);
      for (size_t i = 0; i < count; ++i) {
        tokens.push_back(pool[rng.NextBounded(pool.size())]);  // dups allowed
      }
      EXPECT_EQ(hasher.Signature(tokens), LegacySignature(tokens, hasher.salts()))
          << blocking::SimdLevelName(level) << ", round " << round;
    }
  }
}

TEST(MinHasherEquivalence, SignatureFromHashesMatchesStringSignature) {
  const MinHasher hasher;
  const std::vector<std::string> tokens = {"doe", "oes", "j|do", "doe"};
  std::vector<uint64_t> hashes;
  for (const std::string& token : tokens) hashes.push_back(Fnv1a64(token));
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    std::vector<uint64_t> from_hashes(hasher.num_hashes());
    hasher.SignatureFromHashes(hashes.data(), hashes.size(),
                               from_hashes.data());
    EXPECT_EQ(from_hashes, hasher.Signature(tokens))
        << blocking::SimdLevelName(level);
  }
}

TEST(MinHasherEquivalence, BlockingTokenHashesMatchStringTokenHashes) {
  // The hash-only streaming tokeniser must produce the same multiset of
  // base hashes as hashing the AuthorBlockingTokens strings — MinHash is
  // order- and duplicate-invariant, so equal sorted hash lists guarantee
  // equal signatures.
  const auto dataset =
      data::GenerateBibDataset(data::BibConfig::DblpLike(0.05));
  ASSERT_FALSE(dataset->author_refs().empty());
  for (data::EntityId ref : dataset->author_refs()) {
    const data::Entity& entity = dataset->entity(ref);
    std::vector<uint64_t> expected;
    for (const std::string& token : blocking::AuthorBlockingTokens(entity)) {
      expected.push_back(Fnv1a64(token));
    }
    std::vector<uint64_t> actual;
    blocking::AppendAuthorBlockingTokenHashes(entity, &actual);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "entity " << ref;
  }
}

TEST(ComputeSignaturesEquivalence, MatchesPerDocSignatureAcrossContexts) {
  // Scale chosen so the corpus spans multiple fixed-size chunks.
  const auto dataset =
      data::GenerateBibDataset(data::BibConfig::DblpLike(0.4));
  const std::vector<data::EntityId>& refs = dataset->author_refs();
  ASSERT_GT(refs.size(), text::TokenCorpus::kChunkDocs)
      << "corpus too small to cross a chunk boundary";
  const MinHasher hasher;

  // Per-document reference signatures through the string front door.
  std::vector<std::vector<uint64_t>> expected(refs.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    expected[i] =
        hasher.Signature(blocking::AuthorBlockingTokens(dataset->entity(refs[i])));
  }

  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (SimdLevel level : SupportedLevels()) {
    for (uint32_t threads : {1u, 4u, hw}) {
      ExecutionContext ctx(threads);
      const text::TokenCorpus corpus = text::TokenCorpus::Build(
          refs.size(),
          [&](size_t i, text::TokenCorpus::DocBuilder& builder) {
            blocking::AppendAuthorBlockingTokens(dataset->entity(refs[i]),
                                                 builder);
          },
          ctx);
      const blocking::SignatureMatrix signatures =
          blocking::ComputeSignatures(hasher, corpus, ctx, level);
      ASSERT_EQ(signatures.num_docs(), refs.size());
      ASSERT_EQ(signatures.num_hashes(), hasher.num_hashes());
      for (size_t doc = 0; doc < refs.size(); ++doc) {
        ASSERT_EQ(std::memcmp(signatures.row(doc), expected[doc].data(),
                              hasher.num_hashes() * sizeof(uint64_t)),
                  0)
            << blocking::SimdLevelName(level) << ", " << threads
            << " threads, doc " << doc;
      }
    }
  }
}

void ExpectSameCover(const Cover& reference, const Cover& cover,
                     const std::string& label) {
  ASSERT_EQ(reference.size(), cover.size()) << label;
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference.neighborhood(i).entities,
              cover.neighborhood(i).entities)
        << label << ", neighborhood " << i;
  }
}

TEST(EndToEndSimdEquivalence, CoversBitIdenticalAcrossLevelsThreadsShards) {
  // The full blocking pipeline — tokenise, signatures, banding, cover
  // assembly — must produce one answer regardless of the dispatched
  // instruction set, the thread count, or the shard count.
  data::BibConfig config = data::BibConfig::DblpLike(0.08);
  config.seed = 9001;
  const auto dataset = data::GenerateBibDataset(config);

  Cover lsh_reference;
  Cover canopy_reference;
  {
    ScopedSimdLevel scoped(SimdLevel::kScalar);
    ExecutionContext serial(1, /*num_shards=*/1);
    lsh_reference = blocking::MakeCoverBuilder(BlockingStrategy::kLsh)
                        ->Build(*dataset, serial);
    canopy_reference = blocking::MakeCoverBuilder(BlockingStrategy::kCanopy)
                           ->Build(*dataset, serial);
  }

  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    for (uint32_t threads : {1u, 4u, hw}) {
      for (uint32_t shards : {1u, 4u, 32u}) {
        ExecutionContext ctx(threads, shards);
        const std::string label = std::string(blocking::SimdLevelName(level)) +
                                  ", " + std::to_string(threads) +
                                  " threads, " + std::to_string(shards) +
                                  " shards";
        ExpectSameCover(lsh_reference,
                        blocking::MakeCoverBuilder(BlockingStrategy::kLsh)
                            ->Build(*dataset, ctx),
                        "lsh, " + label);
        ExpectSameCover(canopy_reference,
                        blocking::MakeCoverBuilder(BlockingStrategy::kCanopy)
                            ->Build(*dataset, ctx),
                        "canopy, " + label);
      }
    }
  }
}

}  // namespace
}  // namespace cem
