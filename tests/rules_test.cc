#include <vector>

#include <gtest/gtest.h>

#include "core/match_set.h"
#include "data/dataset.h"
#include "data/figure1.h"
#include "rules/rules_matcher.h"

namespace cem::rules {
namespace {

using core::MatchSet;
using data::EntityId;
using data::EntityPair;

/// A small instance exercising all three RULES:
///   r0 "John Smith" / r1 "John Smith"   -> level 3 (rule 1)
///   r2 "J. Smith"  / r0                 -> level 2; shared coauthor via p2
///   chained pairs at level 1 needing two supports.
class RulesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = d_.AddAuthorRef("John", "Smith", 0);
    b_ = d_.AddAuthorRef("John", "Smith", 0);
    c_ = d_.AddAuthorRef("J.", "Smith", 0);
    x_ = d_.AddAuthorRef("Mary", "Major", 1);
    y_ = d_.AddAuthorRef("M.", "Major", 1);
    // One paper shared by c_ and x_; one shared by a_ and y_ — gives the
    // level-2 pair (a_,c_) a coauthor support iff (x_,y_) is matched, and
    // vice versa.
    data::EntityId p0 = d_.AddPaper("p0");
    d_.AddAuthored(c_, p0);
    d_.AddAuthored(x_, p0);
    data::EntityId p1 = d_.AddPaper("p1");
    d_.AddAuthored(a_, p1);
    d_.AddAuthored(y_, p1);
    d_.Finalize();
    d_.AddCandidatePair(a_, b_, text::SimilarityLevel::kHigh);    // Rule 1.
    d_.AddCandidatePair(a_, c_, text::SimilarityLevel::kMedium);  // Rule 2.
    d_.AddCandidatePair(x_, y_, text::SimilarityLevel::kMedium);  // Rule 2.
    d_.FinalizeCandidatePairs();
  }

  std::vector<EntityId> All() const {
    std::vector<EntityId> out(d_.num_entities());
    for (size_t i = 0; i < d_.num_entities(); ++i) out[i] = i;
    return out;
  }

  data::Dataset d_;
  EntityId a_, b_, c_, x_, y_;
};

TEST_F(RulesFixture, Rule1FiresUnconditionally) {
  RulesConfig config;
  config.transitive_closure = false;
  RulesMatcher matcher(d_, config);
  const MatchSet out = matcher.Match(All());
  EXPECT_TRUE(out.Contains(EntityPair(a_, b_)));
}

TEST_F(RulesFixture, Rule2ChainsThroughFixpoint) {
  // (a,c) is supported by the link to (x,y) and vice versa — but neither
  // has base support, so neither fires: RULES (unlike MLN) has no way to
  // bootstrap a mutually-recursive chain without a seed.
  RulesConfig config;
  config.transitive_closure = false;
  RulesMatcher matcher(d_, config);
  const MatchSet out = matcher.Match(All());
  EXPECT_FALSE(out.Contains(EntityPair(a_, c_)));
  EXPECT_FALSE(out.Contains(EntityPair(x_, y_)));

  // With (x,y) as positive evidence the chain unlocks (iterative behavior
  // of the paper's Appendix D discussion).
  MatchSet evidence;
  evidence.Insert(EntityPair(x_, y_));
  const MatchSet with = matcher.Match(All(), evidence);
  EXPECT_TRUE(with.Contains(EntityPair(a_, c_)));
}

TEST_F(RulesFixture, TransitiveClosureCompletesClusters) {
  MatchSet evidence;
  evidence.Insert(EntityPair(x_, y_));
  RulesConfig config;
  config.transitive_closure = true;
  RulesMatcher matcher(d_, config);
  const MatchSet out = matcher.Match(All(), evidence);
  // a=b (rule 1) and a=c (rule 2) imply b=c by closure.
  EXPECT_TRUE(out.Contains(EntityPair(b_, c_)));
}

TEST_F(RulesFixture, NegativeEvidenceBlocksRuleAndClosure) {
  RulesConfig config;
  config.transitive_closure = true;
  RulesMatcher matcher(d_, config);
  MatchSet positive;
  positive.Insert(EntityPair(x_, y_));
  MatchSet negative;
  negative.Insert(EntityPair(b_, c_));
  const MatchSet out = matcher.Match(All(), positive, negative);
  EXPECT_FALSE(out.Contains(EntityPair(b_, c_)));
}

TEST_F(RulesFixture, EvidenceOutsideNeighborhoodIgnored) {
  RulesConfig config;
  config.transitive_closure = false;
  RulesMatcher matcher(d_, config);
  MatchSet evidence;
  evidence.Insert(EntityPair(x_, y_));
  // Neighborhood without x_: the (x,y) evidence must not leak in.
  const std::vector<EntityId> neighborhood = {a_, b_, c_, y_};
  const MatchSet out = matcher.Match(neighborhood, evidence);
  EXPECT_FALSE(out.Contains(EntityPair(a_, c_)));
  EXPECT_FALSE(out.Contains(EntityPair(x_, y_)));
}

TEST_F(RulesFixture, RequiredSupportLevelsRespectLevelOne) {
  // Build a level-1 pair with exactly one support: must NOT fire (needs 2).
  data::Dataset d;
  EntityId a = d.AddAuthorRef("A", "Aa", 0);
  EntityId b = d.AddAuthorRef("A", "Ab", 0);
  EntityId s = d.AddAuthorRef("S", "S", 2);
  EntityId p0 = d.AddPaper("p0");
  d.AddAuthored(a, p0);
  d.AddAuthored(s, p0);
  EntityId p1 = d.AddPaper("p1");
  d.AddAuthored(b, p1);
  d.AddAuthored(s, p1);
  d.Finalize();
  d.AddCandidatePair(a, b, text::SimilarityLevel::kLow);
  d.FinalizeCandidatePairs();

  RulesConfig config;
  config.transitive_closure = false;
  RulesMatcher matcher(d, config);
  std::vector<EntityId> all = {a, b, s, p0, p1};
  EXPECT_FALSE(matcher.Match(all).Contains(EntityPair(a, b)));

  // Two shared coauthors satisfy rule 3.
  data::Dataset d2;
  a = d2.AddAuthorRef("A", "Aa", 0);
  b = d2.AddAuthorRef("A", "Ab", 0);
  s = d2.AddAuthorRef("S", "S", 2);
  EntityId t = d2.AddAuthorRef("T", "T", 3);
  p0 = d2.AddPaper("p0");
  d2.AddAuthored(a, p0);
  d2.AddAuthored(s, p0);
  d2.AddAuthored(t, p0);
  p1 = d2.AddPaper("p1");
  d2.AddAuthored(b, p1);
  d2.AddAuthored(s, p1);
  d2.AddAuthored(t, p1);
  d2.Finalize();
  d2.AddCandidatePair(a, b, text::SimilarityLevel::kLow);
  d2.FinalizeCandidatePairs();
  RulesMatcher matcher2(d2, config);
  std::vector<EntityId> all2 = {a, b, s, t, p0, p1};
  EXPECT_TRUE(matcher2.Match(all2).Contains(EntityPair(a, b)));
}

TEST(RulesMatcherTest, Figure1LevelsTooWeakForRules) {
  // Figure 1's pairs are level kMedium; without seeds RULES only matches
  // pairs with an unconditional shared coauthor: (c1,c2) via d1.
  data::Figure1 fig = data::MakeFigure1();
  RulesConfig config;
  config.transitive_closure = false;
  RulesMatcher matcher(*fig.dataset, config);
  std::vector<EntityId> all(fig.dataset->num_entities());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  const MatchSet out = matcher.Match(all);
  EXPECT_TRUE(out.Contains(EntityPair(fig.c1, fig.c2)));
}

}  // namespace
}  // namespace cem::rules
