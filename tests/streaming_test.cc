// Streaming ingest equivalence suite: the headline guarantee of the
// stream subsystem is that for ANY arrival order, chunk size, thread count
// and shard count, the streamed fixpoint equals a batch rebuild's RunSmp
// match set — while the incrementally maintained cover stays total
// (w.r.t. Similar and Coauthor) over the live references at every prefix
// of the stream, and all work counters stay bit-identical across
// execution contexts (the repo-wide determinism contract).

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/lsh_cover.h"
#include "core/canopy.h"
#include "core/cover.h"
#include "core/message_passing.h"
#include "data/bib_generator.h"
#include "data/figure1.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "mln/mln_matcher.h"
#include "rules/rules_matcher.h"
#include "stream/streaming_matcher.h"
#include "util/execution_context.h"
#include "util/random.h"

namespace cem {
namespace {

using stream::StreamingMatcher;
using stream::StreamingOptions;
using stream::StreamingStats;

std::vector<uint32_t> ThreadCounts() {
  return {1, 4, std::max(1u, std::thread::hardware_concurrency())};
}

/// A small noisy bibliography corpus, distinct per seed (mirrors
/// lsh_cover_test.cc).
std::unique_ptr<data::Dataset> MakeSmallBib(uint64_t seed) {
  data::BibConfig config = data::BibConfig::DblpLike(0.05);
  config.seed = seed;
  return data::GenerateBibDataset(config);
}

/// The batch reference point: a freshly built total cover + RunSmp.
core::MatchSet BatchSmp(const core::Matcher& matcher,
                        core::BlockingStrategy strategy) {
  const core::Cover cover =
      blocking::MakeCoverBuilder(strategy)->Build(matcher.dataset());
  return core::RunSmp(matcher, cover).matches;
}

TEST(StreamingFigure1, AllArrivalOrdersConvergeToBatch) {
  const data::Figure1 fig = data::MakeFigure1();
  const mln::MlnMatcher matcher(*fig.dataset, mln::MlnWeights::Figure1Demo());
  const core::MatchSet batch =
      BatchSmp(matcher, core::BlockingStrategy::kLsh);
  for (uint64_t order = 0; order < 10; ++order) {
    std::vector<data::EntityId> refs = fig.dataset->author_refs();
    Rng rng(order);
    rng.Shuffle(refs);
    StreamingMatcher streaming(matcher);
    for (data::EntityId ref : refs) streaming.Add(ref);
    EXPECT_EQ(streaming.matches(), batch) << "arrival order " << order;
    // The fully streamed cover is a Definition-7 total cover.
    EXPECT_TRUE(streaming.cover().CoversAllAuthorRefs(*fig.dataset));
    EXPECT_DOUBLE_EQ(streaming.cover().CandidatePairCoverage(*fig.dataset),
                     1.0);
    EXPECT_TRUE(streaming.cover().IsTotalForCoauthor(*fig.dataset));
  }
}

class StreamingEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingEquivalence, RandomArrivalOrdersConvergeToBatch) {
  const auto dataset = MakeSmallBib(GetParam());
  const mln::MlnMatcher matcher(*dataset);
  // The fixpoint is also independent of which batch builder the rebuild
  // uses (both produce boundary-expanded total covers).
  const core::MatchSet batch_lsh =
      BatchSmp(matcher, core::BlockingStrategy::kLsh);
  const core::MatchSet batch_canopy =
      BatchSmp(matcher, core::BlockingStrategy::kCanopy);
  EXPECT_EQ(batch_lsh, batch_canopy);
  const eval::PrMetrics batch_pr = eval::ComputePr(*dataset, batch_lsh);
  for (uint64_t arrival = 0; arrival < 3; ++arrival) {
    const eval::StreamingReplayResult replay =
        eval::ReplayStreaming(matcher, GetParam() * 31 + arrival);
    EXPECT_EQ(replay.matches, batch_lsh) << "arrival seed " << arrival;
    const eval::PrMetrics pr = eval::ComputePr(*dataset, replay.matches);
    EXPECT_DOUBLE_EQ(pr.f1, batch_pr.f1);
  }
}

TEST_P(StreamingEquivalence, RulesMatcherConvergesToBatch) {
  const auto dataset = MakeSmallBib(GetParam());
  const rules::RulesMatcher matcher(*dataset);
  const core::MatchSet batch =
      BatchSmp(matcher, core::BlockingStrategy::kCanopy);
  const eval::StreamingReplayResult replay =
      eval::ReplayStreaming(matcher, GetParam() + 99, /*chunk_size=*/8);
  EXPECT_EQ(replay.matches, batch);
}

TEST_P(StreamingEquivalence, ThreadAndShardCountsNeverChangeTheResult) {
  // Determinism contract: for a fixed arrival order, matches AND every
  // work counter are bit-identical for any thread/shard count.
  const auto dataset = MakeSmallBib(GetParam());
  const mln::MlnMatcher matcher(*dataset);
  ExecutionContext serial(1, /*num_shards=*/1);
  StreamingOptions reference_options;
  reference_options.context = &serial;
  const eval::StreamingReplayResult reference = eval::ReplayStreaming(
      matcher, /*arrival_seed=*/GetParam(), /*chunk_size=*/16,
      reference_options);
  for (uint32_t threads : ThreadCounts()) {
    for (uint32_t shards : {1u, 4u, 32u}) {
      ExecutionContext ctx(threads, shards);
      StreamingOptions options;
      options.context = &ctx;
      const eval::StreamingReplayResult replay = eval::ReplayStreaming(
          matcher, GetParam(), /*chunk_size=*/16, options);
      const std::string label =
          std::to_string(threads) + " threads, " + std::to_string(shards) +
          " shards";
      EXPECT_EQ(replay.matches, reference.matches) << label;
      EXPECT_EQ(replay.stats.ingest.canopies_touched,
                reference.stats.ingest.canopies_touched)
          << label;
      EXPECT_EQ(replay.stats.ingest.lsh_candidates_scanned,
                reference.stats.ingest.lsh_candidates_scanned)
          << label;
      EXPECT_EQ(replay.stats.ingest.pairs_patched,
                reference.stats.ingest.pairs_patched)
          << label;
      EXPECT_EQ(replay.stats.ingest.seeds_created,
                reference.stats.ingest.seeds_created)
          << label;
      EXPECT_EQ(replay.stats.ingest.memberships_added,
                reference.stats.ingest.memberships_added)
          << label;
      EXPECT_EQ(replay.stats.ingest.boundary_additions,
                reference.stats.ingest.boundary_additions)
          << label;
      EXPECT_EQ(replay.stats.matching.neighborhood_evaluations,
                reference.stats.matching.neighborhood_evaluations)
          << label;
      EXPECT_EQ(replay.stats.matching.pairs_rescored,
                reference.stats.matching.pairs_rescored)
          << label;
    }
  }
}

TEST_P(StreamingEquivalence, ChunkedIngestMatchesOneByOne) {
  // AddBatch applies its inserts serially in order, so the final cover and
  // matches are bit-identical to one Add() per reference — only the amount
  // of intermediate re-matching differs.
  const auto dataset = MakeSmallBib(GetParam());
  const mln::MlnMatcher matcher(*dataset);
  std::vector<data::EntityId> refs = dataset->author_refs();
  Rng rng(GetParam());
  rng.Shuffle(refs);
  StreamingMatcher one_by_one(matcher);
  for (data::EntityId ref : refs) one_by_one.Add(ref);
  for (const size_t chunk : {size_t{7}, size_t{32}, refs.size()}) {
    StreamingMatcher chunked(matcher);
    for (size_t start = 0; start < refs.size(); start += chunk) {
      const size_t end = std::min(refs.size(), start + chunk);
      chunked.AddBatch({refs.begin() + start, refs.begin() + end});
    }
    EXPECT_EQ(chunked.matches(), one_by_one.matches()) << "chunk " << chunk;
    ASSERT_EQ(chunked.cover().size(), one_by_one.cover().size());
    for (size_t i = 0; i < chunked.cover().size(); ++i) {
      EXPECT_EQ(chunked.cover().neighborhood(i).entities,
                one_by_one.cover().neighborhood(i).entities)
          << "chunk " << chunk << ", neighborhood " << i;
    }
    // Ingest-side counters are chunk-invariant too (same serial inserts).
    EXPECT_EQ(chunked.stats().ingest.canopies_touched,
              one_by_one.stats().ingest.canopies_touched);
    EXPECT_EQ(chunked.stats().ingest.memberships_added,
              one_by_one.stats().ingest.memberships_added);
  }
}

TEST_P(StreamingEquivalence, CoverStaysTotalAtEveryPrefix) {
  // The maintained invariant behind the equivalence: at every point of the
  // stream, live candidate pairs and live coauthor tuples each share a
  // neighborhood, and every live ref is covered.
  const auto dataset = MakeSmallBib(GetParam());
  const mln::MlnMatcher matcher(*dataset);
  std::vector<data::EntityId> refs = dataset->author_refs();
  Rng rng(GetParam() ^ 0xabcdef);
  rng.Shuffle(refs);
  StreamingMatcher streaming(matcher);
  size_t added = 0;
  for (data::EntityId ref : refs) {
    streaming.Add(ref);
    ++added;
    if (added % 13 != 0 && added != refs.size()) continue;  // Checkpoints.
    const core::CoverMembership membership(streaming.cover());
    for (data::EntityId live : refs) {
      if (!streaming.is_live(live)) continue;
      EXPECT_TRUE(membership.Contains(live));
    }
    for (const data::CandidatePair& cp : dataset->candidate_pairs()) {
      if (!streaming.is_live(cp.pair.a) || !streaming.is_live(cp.pair.b)) {
        continue;
      }
      EXPECT_TRUE(membership.Together(cp.pair.a, cp.pair.b))
          << "split live pair (" << cp.pair.a << ", " << cp.pair.b
          << ") after " << added << " inserts";
    }
    for (data::EntityId u : dataset->author_refs()) {
      if (!streaming.is_live(u)) continue;
      for (data::EntityId v : dataset->Coauthors(u)) {
        if (v < u || !streaming.is_live(v)) continue;
        EXPECT_TRUE(membership.Together(u, v))
            << "split live coauthor tuple (" << u << ", " << v << ") after "
            << added << " inserts";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, StreamingEquivalence,
                         ::testing::Range<uint64_t>(500, 503));

TEST(StreamingGuardsDeathTest, RejectsDuplicateAndNonRefInserts) {
  const data::Figure1 fig = data::MakeFigure1();
  const mln::MlnMatcher matcher(*fig.dataset, mln::MlnWeights::Figure1Demo());
  StreamingMatcher streaming(matcher);
  streaming.Add(fig.a1);
  EXPECT_TRUE(streaming.is_live(fig.a1));
  EXPECT_EQ(streaming.num_live(), 1u);
  EXPECT_DEATH(streaming.Add(fig.a1), "inserted twice");
  // Papers participate through relations only; they never stream.
  const data::EntityId paper = fig.dataset->authored().Neighbors(fig.a1)[0];
  EXPECT_DEATH(streaming.Add(paper), "author references");
}

}  // namespace
}  // namespace cem
