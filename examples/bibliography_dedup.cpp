// Bibliography deduplication at realistic scale: generate a noisy corpus
// (abbreviated and mutated author names across thousands of references),
// build a total cover, run MMP with the Appendix-B MLN, and print quality
// metrics plus a few resolved author clusters.

#include <cstdio>
#include <map>
#include <vector>

#include "blocking/lsh_cover.h"
#include "core/match_set.h"
#include "core/message_passing.h"
#include "data/bib_generator.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "mln/mln_matcher.h"
#include "util/union_find.h"

int main() {
  using namespace cem;

  // A HEPTH-like corpus: heavy first-name abbreviation, some typos.
  const data::BibConfig config = data::BibConfig::HepthLike(1.0);
  auto dataset = data::GenerateBibDataset(config);
  std::printf("Corpus: %zu author references across %u papers (%u authors)\n",
              dataset->author_refs().size(), config.num_papers,
              config.num_authors);
  std::printf("Candidate pairs to decide: %zu\n\n",
              dataset->num_candidate_pairs());

  // Cover construction (total cover); CEM_BLOCKING picks the strategy.
  const auto builder = blocking::MakeCoverBuilder(eval::BenchBlocking());
  const core::Cover cover = builder->Build(*dataset);
  std::printf("Cover (%s blocking): %s\n\n", builder->name().c_str(),
              cover.Summary(*dataset).c_str());

  // Collective matching with MMP.
  mln::MlnMatcher matcher(*dataset);
  const core::MpResult result = core::RunMmp(matcher, cover);
  const core::MatchSet clusters = core::TransitiveClosure(result.matches);

  const eval::PrMetrics metrics = eval::ComputePr(*dataset, clusters);
  std::printf("MMP finished in %.2fs after %zu neighborhood evaluations\n",
              result.seconds, result.neighborhood_evaluations);
  std::printf("Quality (after closure): %s\n\n", metrics.ToString().c_str());

  // Show three resolved clusters (entity groups declared the same author).
  std::map<data::EntityId, std::vector<data::EntityId>> groups;
  {
    UnionFind uf(dataset->num_entities());
    for (const data::EntityPair& p : clusters.SortedPairs()) {
      uf.Union(p.a, p.b);
    }
    for (data::EntityId ref : dataset->author_refs()) {
      groups[uf.Find(ref)].push_back(ref);
    }
  }
  std::printf("Sample resolved clusters:\n");
  int shown = 0;
  for (const auto& [root, members] : groups) {
    if (members.size() < 3) continue;
    std::printf("  {");
    for (size_t i = 0; i < members.size(); ++i) {
      std::printf("%s\"%s\"", i ? ", " : "",
                  dataset->entity(members[i]).DisplayName().c_str());
    }
    std::printf("}\n");
    if (++shown == 3) break;
  }
  return 0;
}
