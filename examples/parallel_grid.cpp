// Parallel execution (Section 6.3): run the framework round-parallel on a
// simulated grid and show how the simulated makespan falls as machines are
// added — and that the result never changes (consistency).
//
//   parallel_grid [--threads N]
//
// --threads sets the real worker threads of both the blocking front-end
// (signatures, sharded LSH insertion, cover assembly) and the grid rounds;
// 0/unset = the process default (CEM_THREADS, or hardware concurrency).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "blocking/lsh_cover.h"
#include "core/grid_executor.h"
#include "data/bib_generator.h"
#include "eval/experiment.h"
#include "mln/mln_matcher.h"

int main(int argc, char** argv) {
  using namespace cem;

  uint32_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      const int parsed = std::atoi(argv[++i]);  // <= 0 = process default.
      threads = parsed > 0 ? static_cast<uint32_t>(parsed) : 0;
    } else {
      std::fprintf(stderr, "usage: parallel_grid [--threads N]\n");
      return 2;
    }
  }
  std::optional<ExecutionContext> owned_context;
  if (threads > 0) owned_context.emplace(threads);
  const ExecutionContext& ctx =
      owned_context ? *owned_context : ExecutionContext::Default();

  auto dataset =
      data::GenerateBibDataset(data::BibConfig::DblpLike(1.0), {}, ctx);
  // Blocking strategy is pluggable; CEM_BLOCKING=lsh switches to MinHash/LSH.
  const auto builder = blocking::MakeCoverBuilder(eval::BenchBlocking());
  const core::Cover cover = builder->Build(*dataset, ctx);
  std::printf(
      "Corpus: %zu refs, %zu neighborhoods (%s blocking, %u worker "
      "threads)\n\n",
      dataset->author_refs().size(), cover.size(), builder->name().c_str(),
      ctx.num_threads());

  mln::MlnMatcher inner(*dataset);
  // The cost model emulates the paper's expensive-inference regime so that
  // per-neighborhood task durations (and thus the makespan) are meaningful.
  eval::CostModelMatcher matcher(inner);

  std::printf("%-10s %-14s %-10s %-8s %s\n", "machines", "sim seconds",
              "speedup", "rounds", "matches");
  double baseline = 0.0;
  for (uint32_t machines : {1u, 2u, 4u, 8u, 16u, 30u}) {
    core::GridOptions options;
    options.scheme = core::MpScheme::kSmp;
    options.num_machines = machines;
    options.context = &ctx;  // Reuse the blocking front-end's pool.
    options.per_round_overhead_seconds = 0.02;
    const core::GridResult result = core::RunGrid(matcher, cover, options);
    if (machines == 1) baseline = result.simulated_seconds;
    std::printf("%-10u %-14.2f %-10.1f %-8zu %zu\n", machines,
                result.simulated_seconds,
                baseline / result.simulated_seconds, result.rounds,
                result.matches.size());
  }
  std::printf(
      "\nSpeedup is sub-linear: random assignment skews per-machine load "
      "and every round pays a scheduling overhead (Section 6.3).\n");
  return 0;
}
