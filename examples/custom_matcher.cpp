// Plugging a custom matcher into the framework: any object implementing
// core::Matcher (the paper's Type-I black box) gets SMP and the grid
// executor for free. This example wires up a simple threshold-plus-
// one-coauthor matcher — an "iterative" style matcher in the paper's
// taxonomy (Appendix D) — and scales it with SMP.

#include <cstdio>
#include <unordered_set>

#include "core/canopy.h"
#include "core/matcher.h"
#include "core/message_passing.h"
#include "data/bib_generator.h"
#include "eval/metrics.h"

namespace {

using namespace cem;

/// Matches a candidate pair iff it is highly similar (level 3), or is
/// moderately similar (level 2) and has a shared coauthor or an
/// already-matched coauthor pair. Monotone and idempotent (well-behaved),
/// so Theorem 2's guarantees apply to SMP runs.
class ThresholdCoauthorMatcher : public core::Matcher {
 public:
  explicit ThresholdCoauthorMatcher(const data::Dataset& dataset)
      : dataset_(&dataset) {}

  core::MatchSet Match(const std::vector<data::EntityId>& entities,
                       const core::MatchSet& positive,
                       const core::MatchSet& negative) const override {
    const std::unordered_set<data::EntityId> members(entities.begin(),
                                                     entities.end());
    core::MatchSet matched;
    // Seed with in-neighborhood positive evidence.
    for (const data::EntityPair& p : positive.SortedPairs()) {
      if (members.count(p.a) && members.count(p.b) && !negative.Contains(p)) {
        matched.Insert(p);
      }
    }
    // Iterate to fixpoint: newly matched pairs can unlock level-2 pairs.
    bool changed = true;
    while (changed) {
      changed = false;
      for (data::EntityId e : entities) {
        for (data::PairId id : dataset_->PairsOfEntity(e)) {
          const data::CandidatePair& cp = dataset_->candidate_pair(id);
          if (cp.pair.a != e || !members.count(cp.pair.b)) continue;
          if (matched.Contains(cp.pair) || negative.Contains(cp.pair)) continue;
          if (Decide(cp, members, matched)) {
            matched.Insert(cp.pair);
            changed = true;
          }
        }
      }
    }
    return matched;
  }

  const data::Dataset& dataset() const override { return *dataset_; }

 private:
  bool Decide(const data::CandidatePair& cp,
              const std::unordered_set<data::EntityId>& members,
              const core::MatchSet& matched) const {
    if (cp.level == text::SimilarityLevel::kHigh) return true;
    if (cp.level != text::SimilarityLevel::kMedium) return false;
    // One shared coauthor, or one matched coauthor pair, inside C.
    const auto& co_a = dataset_->Coauthors(cp.pair.a);
    const auto& co_b = dataset_->Coauthors(cp.pair.b);
    for (data::EntityId c : co_a) {
      if (!members.count(c)) continue;
      for (data::EntityId d : co_b) {
        if (!members.count(d)) continue;
        if (c == d || matched.Contains(data::EntityPair(c, d))) return true;
      }
    }
    return false;
  }

  const data::Dataset* dataset_;
};

}  // namespace

int main() {
  auto dataset = data::GenerateBibDataset(data::BibConfig::DblpLike(1.0));
  const core::Cover cover = core::BuildCanopyCover(*dataset);

  ThresholdCoauthorMatcher matcher(*dataset);
  const core::MpResult no_mp = core::RunNoMp(matcher, cover);
  const core::MpResult smp = core::RunSmp(matcher, cover);
  const core::MatchSet full = matcher.MatchAll();

  auto report = [&](const char* name, const core::MatchSet& matches) {
    const eval::PrMetrics m =
        eval::ComputePr(*dataset, core::TransitiveClosure(matches));
    std::printf("%-6s %s\n", name, m.ToString().c_str());
  };
  std::printf("Custom Type-I matcher scaled by the framework:\n");
  report("NO-MP", no_mp.matches);
  report("SMP", smp.matches);
  report("FULL", full);
  std::printf("\nSMP sound vs FULL: %s (Theorem 2 applies — the matcher is "
              "well-behaved)\n",
              smp.matches.IsSubsetOf(full) ? "yes" : "NO");
  return 0;
}
