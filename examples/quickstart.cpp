// Quickstart: the paper's running example (Figures 1 and 2), end to end.
//
// Builds the 9-reference instance, runs the MLN matcher under the three
// execution schemes and prints the walkthrough of Section 2: NO-MP finds
// only (c1,c2); SMP additionally recovers (b1,b2) via a simple message;
// MMP completes the {(a1,a2),(b2,b3),(c2,c3)} chain via maximal messages
// and reproduces the holistic optimum exactly.

#include <cstdio>
#include <string>

#include "core/cover.h"
#include "core/message_passing.h"
#include "data/figure1.h"
#include "mln/mln_matcher.h"

namespace {

std::string Describe(const cem::data::Dataset& dataset,
                     const cem::core::MatchSet& matches) {
  std::string out;
  for (const cem::data::EntityPair& p : matches.SortedPairs()) {
    if (!out.empty()) out += ", ";
    out += "(" + dataset.entity(p.a).DisplayName() + " = " +
           dataset.entity(p.b).DisplayName() + ")";
  }
  return out.empty() ? "(none)" : out;
}

}  // namespace

int main() {
  using namespace cem;

  // 1. The entity-matching instance of Figure 1: author references with
  //    Coauthor edges, Similar within each letter group.
  data::Figure1 fig = data::MakeFigure1();
  const data::Dataset& dataset = *fig.dataset;
  std::printf("Entities: %zu author references, %zu candidate pairs\n",
              dataset.author_refs().size(), dataset.num_candidate_pairs());

  // 2. The black-box matcher: the MLN of Section 2.1 with the pedagogical
  //    weights R1 = -5, R2 = +8.
  mln::MlnMatcher matcher(dataset, mln::MlnWeights::Figure1Demo());

  // 3. The cover of Figure 2: C1, C2, C3.
  core::Cover cover;
  for (const auto& neighborhood : fig.neighborhoods) cover.Add(neighborhood);

  // 4. Run the three schemes.
  const core::MpResult no_mp = core::RunNoMp(matcher, cover);
  const core::MpResult smp = core::RunSmp(matcher, cover);
  const core::MpResult mmp = core::RunMmp(matcher, cover);
  const core::MatchSet full = matcher.MatchAll();

  std::printf("\nNO-MP: %s\n", Describe(dataset, no_mp.matches).c_str());
  std::printf("SMP:   %s\n", Describe(dataset, smp.matches).c_str());
  std::printf("MMP:   %s\n", Describe(dataset, mmp.matches).c_str());
  std::printf("FULL:  %s\n", Describe(dataset, full).c_str());

  std::printf("\nMMP created %zu maximal messages and promoted %zu;\n",
              mmp.messages_created, mmp.messages_promoted);
  std::printf("MMP output %s the holistic run.\n",
              mmp.matches == full ? "EQUALS" : "differs from");
  return 0;
}
