// A small command-line deduplication tool around the library — the shape a
// downstream user would actually run:
//
//   dedup_tool [--input corpus.tsv] [--output matches.tsv]
//              [--matcher mln|rules] [--scheme nomp|smp|mmp]
//              [--machines N] [--generate hepth|dblp] [--scale S]
//              [--blocking canopy|lsh] [--threads N]
//              [--stream] [--stream-chunk N] [--arrival-seed S]
//              [--snapshot-dir DIR] [--snapshot-every N] [--recover]
//              [--fsync] [--metrics-json PATH] [--trace-json PATH]
//
// Reads a TSV corpus (see data/tsv_io.h; --generate synthesises one
// instead), builds candidate pairs and a total cover, runs the chosen
// matcher under the chosen scheme (optionally grid-parallel), prints
// metrics when ground truth is present, and writes the matched pairs.
//
// --stream switches to the streaming ingest subsystem: references are
// replayed in a seeded random arrival order through
// stream::StreamingMatcher (chunked AddBatch ingest), the result is
// checked for equivalence against the batch SMP run, and the per-insert
// work counters are printed.
//
// --snapshot-dir (default: the CEM_SNAPSHOT_DIR environment variable)
// makes the streamed run durable: every chunk is WAL-appended before it
// is applied and a snapshot is taken every --snapshot-every inserts (see
// persist/recovery.h). --recover resumes from the directory's state —
// newest complete snapshot plus WAL tail — and streams only the
// references that were not yet ingested; the recovered run converges to
// the same matches as an uninterrupted one. The arrival seed and chunk
// size are persisted alongside the state (arrival.meta): a recovered run
// continues the exact shuffle the crashed one fed, and passing
// conflicting flags is an error rather than a silent divergence.
// --fsync extends durability from process crashes to power loss.
//
// Observability: --metrics-json writes the process metrics registry
// (counters, gauges, latency histograms — see src/obs/metrics.h) as one
// flat JSON object at exit, and refreshes it periodically during --stream
// ingest so an operator can watch a long run converge. --trace-json
// enables scoped-span tracing and writes a Chrome trace_event array
// (load it in chrome://tracing or Perfetto). Both accept --flag PATH and
// --flag=PATH forms.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blocking/lsh_cover.h"
#include "core/grid_executor.h"
#include "core/message_passing.h"
#include "data/bib_generator.h"
#include "data/tsv_io.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "mln/mln_matcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/recovery.h"
#include "rules/rules_matcher.h"
#include "stream/streaming_matcher.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace cem;

struct Args {
  std::string input;
  std::string output;
  std::string matcher = "mln";
  std::string scheme = "mmp";
  std::string generate = "dblp";
  /// Defaults from CEM_BLOCKING (like the benches); the flag overrides.
  std::string blocking = core::BlockingStrategyName(eval::BenchBlocking());
  double scale = 0.5;
  uint32_t machines = 1;
  /// Worker threads of the blocking/matching pipeline; 0 = the process
  /// default (CEM_THREADS, or hardware concurrency).
  uint32_t threads = 0;
  /// Streaming ingest replay instead of the batch pipeline.
  bool stream = false;
  /// References per AddBatch chunk in --stream mode (0 = one at a time).
  uint32_t stream_chunk = 64;
  bool stream_chunk_set = false;  // Explicit flag vs default.
  /// Seed of the random arrival order in --stream mode.
  uint64_t arrival_seed = 1;
  bool arrival_seed_set = false;  // Explicit flag vs default.
  /// Durable state directory for --stream (empty = no persistence).
  /// Defaults from CEM_SNAPSHOT_DIR so deployments can set it globally.
  std::string snapshot_dir = [] {
    const char* env = std::getenv("CEM_SNAPSHOT_DIR");
    return std::string(env == nullptr ? "" : env);
  }();
  /// Auto-snapshot interval in inserts (0 = WAL only).
  size_t snapshot_every = 4096;
  /// Resume from --snapshot-dir state instead of starting fresh.
  bool recover = false;
  /// fsync WAL appends and snapshot files (survive power loss).
  bool fsync = false;
  /// Write the metrics registry as flat JSON here (empty = off).
  std::string metrics_json;
  /// Enable tracing and write a Chrome trace_event array here (empty = off).
  std::string trace_json;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    // `--flag=value` form (the observability flags document it).
    auto eq_value = [&](const char* flag) -> const char* {
      const size_t len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
        return argv[i] + len + 1;
      }
      return nullptr;
    };
    if (!std::strcmp(argv[i], "--input")) {
      const char* v = next("--input");
      if (!v) return false;
      args->input = v;
    } else if (!std::strcmp(argv[i], "--output")) {
      const char* v = next("--output");
      if (!v) return false;
      args->output = v;
    } else if (!std::strcmp(argv[i], "--matcher")) {
      const char* v = next("--matcher");
      if (!v) return false;
      args->matcher = v;
    } else if (!std::strcmp(argv[i], "--scheme")) {
      const char* v = next("--scheme");
      if (!v) return false;
      args->scheme = v;
    } else if (!std::strcmp(argv[i], "--generate")) {
      const char* v = next("--generate");
      if (!v) return false;
      args->generate = v;
    } else if (!std::strcmp(argv[i], "--blocking")) {
      const char* v = next("--blocking");
      if (!v) return false;
      args->blocking = v;
    } else if (!std::strcmp(argv[i], "--scale")) {
      const char* v = next("--scale");
      if (!v) return false;
      args->scale = std::atof(v);
    } else if (!std::strcmp(argv[i], "--machines")) {
      const char* v = next("--machines");
      if (!v) return false;
      args->machines = static_cast<uint32_t>(std::atoi(v));
    } else if (!std::strcmp(argv[i], "--threads")) {
      const char* v = next("--threads");
      if (!v) return false;
      const int parsed = std::atoi(v);  // <= 0 means "process default".
      args->threads = parsed > 0 ? static_cast<uint32_t>(parsed) : 0;
    } else if (!std::strcmp(argv[i], "--stream")) {
      args->stream = true;
    } else if (!std::strcmp(argv[i], "--stream-chunk")) {
      const char* v = next("--stream-chunk");
      if (!v) return false;
      args->stream_chunk = static_cast<uint32_t>(std::atoi(v));
      args->stream_chunk_set = true;
    } else if (!std::strcmp(argv[i], "--arrival-seed")) {
      const char* v = next("--arrival-seed");
      if (!v) return false;
      args->arrival_seed = static_cast<uint64_t>(std::atoll(v));
      args->arrival_seed_set = true;
    } else if (!std::strcmp(argv[i], "--snapshot-dir")) {
      const char* v = next("--snapshot-dir");
      if (!v) return false;
      args->snapshot_dir = v;
    } else if (!std::strcmp(argv[i], "--snapshot-every")) {
      const char* v = next("--snapshot-every");
      if (!v) return false;
      const long long parsed = std::atoll(v);
      args->snapshot_every = parsed > 0 ? static_cast<size_t>(parsed) : 0;
    } else if (!std::strcmp(argv[i], "--recover")) {
      args->recover = true;
    } else if (!std::strcmp(argv[i], "--fsync")) {
      args->fsync = true;
    } else if (!std::strcmp(argv[i], "--metrics-json")) {
      const char* v = next("--metrics-json");
      if (!v) return false;
      args->metrics_json = v;
    } else if (const char* mv = eq_value("--metrics-json")) {
      args->metrics_json = mv;
    } else if (!std::strcmp(argv[i], "--trace-json")) {
      const char* v = next("--trace-json");
      if (!v) return false;
      args->trace_json = v;
    } else if (const char* tv = eq_value("--trace-json")) {
      args->trace_json = tv;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

// --- arrival sidecar --------------------------------------------------------
// The StateFingerprint binds a state directory to the dataset and cover
// options, but not to this tool's arrival shuffle: recovering with a
// different --arrival-seed would pass the fingerprint check and then feed
// references from a different permutation starting at num_live(),
// silently diverging from the stream the crashed run fed. The seed (and
// the chunk size, which fixes the replayed drain boundaries) therefore
// persist in a sidecar next to the WAL and are reconciled on --recover.

std::string ArrivalMetaPath(const std::string& dir) {
  return dir + "/arrival.meta";
}

bool WriteArrivalMeta(const std::string& dir, uint64_t seed, uint32_t chunk) {
  std::ofstream out(ArrivalMetaPath(dir), std::ios::trunc);
  out << "arrival_seed\t" << seed << "\nstream_chunk\t" << chunk << "\n";
  return static_cast<bool>(out);
}

bool ReadArrivalMeta(const std::string& dir, uint64_t* seed,
                     uint32_t* chunk) {
  std::ifstream in(ArrivalMetaPath(dir));
  std::string key;
  unsigned long long value = 0;
  if (!(in >> key >> value) || key != "arrival_seed") return false;
  *seed = value;
  if (!(in >> key >> value) || key != "stream_chunk") return false;
  *chunk = static_cast<uint32_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  // --trace-json opts into span recording (otherwise spans cost two clock
  // reads and a relaxed load each — cheap enough to leave compiled in).
  if (!args.trace_json.empty()) {
    obs::TraceRecorder::Global().SetEnabled(true);
  }

  // --- execution context: --threads gets a dedicated pool, otherwise the
  // process-wide shared one (CEM_THREADS). Flows through candidate
  // generation, cover construction and the grid run.
  std::optional<ExecutionContext> owned_context;
  if (args.threads > 0) owned_context.emplace(args.threads);
  const ExecutionContext& ctx =
      owned_context ? *owned_context : ExecutionContext::Default();
  std::printf("execution: %u worker threads, %u LSH shards\n",
              ctx.num_threads(), ctx.num_shards());

  // --- load or generate the corpus.
  std::unique_ptr<data::Dataset> dataset;
  if (!args.input.empty()) {
    auto loaded = data::LoadDatasetTsv(args.input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", args.input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(*loaded);
    dataset->BuildCandidatePairs({}, ctx);
  } else {
    const data::BibConfig config = args.generate == "hepth"
                                       ? data::BibConfig::HepthLike(args.scale)
                                       : data::BibConfig::DblpLike(args.scale);
    dataset = data::GenerateBibDataset(config, {}, ctx);
    std::printf("generated %s-like corpus at scale %.2f\n",
                args.generate.c_str(), args.scale);
  }
  std::printf("%zu author references, %zu candidate pairs\n",
              dataset->author_refs().size(), dataset->num_candidate_pairs());

  // --- cover and matcher.
  const auto strategy = core::ParseBlockingStrategy(args.blocking);
  if (!strategy.has_value()) {
    std::fprintf(stderr, "unknown blocking '%s' (canopy|lsh)\n",
                 args.blocking.c_str());
    return 2;
  }
  const core::Cover cover =
      blocking::MakeCoverBuilder(*strategy)->Build(*dataset, ctx);
  std::printf("cover (%s blocking): %s\n", args.blocking.c_str(),
              cover.Summary(*dataset).c_str());

  std::unique_ptr<core::Matcher> matcher;
  if (args.matcher == "mln") {
    matcher = std::make_unique<mln::MlnMatcher>(*dataset);
  } else if (args.matcher == "rules") {
    matcher = std::make_unique<rules::RulesMatcher>(*dataset);
  } else {
    std::fprintf(stderr, "unknown matcher '%s' (mln|rules)\n",
                 args.matcher.c_str());
    return 2;
  }

  // --- run.
  Timer timer;
  core::MatchSet matches;
  if (args.stream) {
    if (args.scheme != "smp" || args.machines > 1) {
      std::printf(
          "note: --stream drains with SMP semantics in-process; "
          "--scheme/--machines are ignored\n");
    }
    stream::StreamingOptions options;
    options.context = &ctx;
    if (!args.metrics_json.empty()) {
      // Periodic operational snapshot: refresh the stream gauges and
      // rewrite the metrics file every ~1k inserts so a long ingest is
      // observable while it runs, not only at exit.
      options.metrics_every_inserts = 1024;
      options.metrics_hook = [&args](const stream::StreamingMatcher&) {
        const Status written = obs::WriteMetricsJson(args.metrics_json);
        if (!written.ok()) {
          std::fprintf(stderr, "warning: %s\n",
                       written.ToString().c_str());
        }
      };
    }
    size_t num_refs = 0;
    size_t num_chunks = 0;
    stream::StreamingStats s;
    if (!args.snapshot_dir.empty()) {
      // Durable ingest: WAL-ahead chunks plus periodic snapshots. The
      // arrival order is the same seeded shuffle ReplayStreaming uses, so
      // a recovered run continues the exact stream a crashed one fed —
      // guaranteed by reconciling the persisted arrival sidecar first.
      if (args.recover) {
        uint64_t saved_seed = 0;
        uint32_t saved_chunk = 0;
        if (ReadArrivalMeta(args.snapshot_dir, &saved_seed, &saved_chunk)) {
          if (args.arrival_seed_set && args.arrival_seed != saved_seed) {
            std::fprintf(stderr,
                         "--arrival-seed %llu conflicts with the recorded "
                         "seed %llu in %s/arrival.meta; the recovered state "
                         "was fed from that shuffle\n",
                         static_cast<unsigned long long>(args.arrival_seed),
                         static_cast<unsigned long long>(saved_seed),
                         args.snapshot_dir.c_str());
            return 2;
          }
          if (args.stream_chunk_set && args.stream_chunk != saved_chunk) {
            std::fprintf(stderr,
                         "--stream-chunk %u conflicts with the recorded "
                         "chunk size %u in %s/arrival.meta\n",
                         args.stream_chunk, saved_chunk,
                         args.snapshot_dir.c_str());
            return 2;
          }
          args.arrival_seed = saved_seed;
          args.stream_chunk = saved_chunk;
        } else {
          std::fprintf(stderr,
                       "warning: %s/arrival.meta missing; trusting "
                       "--arrival-seed %llu / --stream-chunk %u to match "
                       "the crashed run\n",
                       args.snapshot_dir.c_str(),
                       static_cast<unsigned long long>(args.arrival_seed),
                       args.stream_chunk);
        }
      }
      std::vector<data::EntityId> refs = dataset->author_refs();
      Rng rng(args.arrival_seed);
      rng.Shuffle(refs);
      persist::PersistentStreamingMatcher persistent(
          *matcher, options,
          {args.snapshot_dir, args.snapshot_every, nullptr, args.fsync});
      if (args.recover) {
        persist::RecoveryInfo info;
        const Status recovered = persistent.Recover(&info);
        if (!recovered.ok()) {
          std::fprintf(stderr, "recovery from %s failed: %s\n",
                       args.snapshot_dir.c_str(),
                       recovered.ToString().c_str());
          return 1;
        }
        std::printf(
            "recovered %zu inserts from %s (%s at %zu inserts, %zu WAL "
            "chunks replayed, %zu snapshot(s) skipped%s)\n",
            info.inserts_recovered, args.snapshot_dir.c_str(),
            info.used_snapshot ? "snapshot" : "no snapshot",
            info.snapshot_inserts, info.chunks_replayed,
            info.snapshots_skipped,
            info.wal_tail_truncated ? ", torn WAL tail dropped" : "");
      } else {
        const Status started = persistent.Start();
        if (!started.ok()) {
          std::fprintf(stderr, "cannot start persisted stream: %s\n",
                       started.ToString().c_str());
          return 1;
        }
        if (!WriteArrivalMeta(args.snapshot_dir, args.arrival_seed,
                              args.stream_chunk)) {
          std::fprintf(stderr, "cannot write %s/arrival.meta\n",
                       args.snapshot_dir.c_str());
          return 1;
        }
      }
      const size_t chunk =
          args.stream_chunk == 0 ? 1 : args.stream_chunk;
      for (size_t start = persistent.num_live(); start < refs.size();
           start += chunk) {
        const size_t end = std::min(refs.size(), start + chunk);
        const Status added = persistent.AddBatch(
            {refs.begin() + start, refs.begin() + end});
        if (!added.ok()) {
          std::fprintf(stderr, "ingest failed at insert %zu: %s\n", start,
                       added.ToString().c_str());
          return 1;
        }
        ++num_chunks;
      }
      matches = persistent.matcher().matches();
      s = persistent.matcher().stats();
      num_refs = refs.size();
    } else {
      const eval::StreamingReplayResult replay = eval::ReplayStreaming(
          *matcher, args.arrival_seed, args.stream_chunk, options);
      matches = replay.matches;
      s = replay.stats;
      num_refs = replay.num_refs;
      num_chunks = replay.num_chunks;
    }
    std::printf(
        "streamed %zu refs in %zu chunks (chunk %u, arrival seed %llu) "
        "in %.2fs\n",
        num_refs, num_chunks, args.stream_chunk,
        static_cast<unsigned long long>(args.arrival_seed),
        timer.ElapsedSeconds());
    if (s.ingest.inserts > 0) {
      std::printf(
          "per-insert work: %.2f canopies touched (of %zu total), %.1f pairs "
          "re-scored, %.2f neighborhood evaluations\n",
          static_cast<double>(s.ingest.canopies_touched) /
              static_cast<double>(s.ingest.inserts),
          s.ingest.seeds_created,
          static_cast<double>(s.matching.pairs_rescored) /
              static_cast<double>(s.ingest.inserts),
          static_cast<double>(s.matching.neighborhood_evaluations) /
              static_cast<double>(s.ingest.inserts));
    } else {
      std::printf("no author references to stream\n");
    }
    const core::MatchSet batch = core::RunSmp(*matcher, cover).matches;
    std::printf("equivalent to batch SMP rebuild: %s (%zu vs %zu matches)\n",
                matches == batch ? "yes" : "NO", matches.size(),
                batch.size());
  } else if (args.machines > 1) {
    core::GridOptions options;
    options.num_machines = args.machines;
    options.context = &ctx;  // Reuse the blocking front-end's pool.
    options.scheme = args.scheme == "nomp"  ? core::MpScheme::kNoMp
                     : args.scheme == "smp" ? core::MpScheme::kSmp
                                            : core::MpScheme::kMmp;
    matches = core::RunGrid(*matcher, cover, options).matches;
  } else if (args.scheme == "nomp") {
    matches = core::RunNoMp(*matcher, cover).matches;
  } else if (args.scheme == "smp") {
    matches = core::RunSmp(*matcher, cover).matches;
  } else if (args.scheme == "mmp") {
    auto* probabilistic =
        dynamic_cast<core::ProbabilisticMatcher*>(matcher.get());
    if (probabilistic == nullptr) {
      std::fprintf(stderr,
                   "MMP needs a probabilistic matcher; use --scheme smp "
                   "with --matcher rules\n");
      return 2;
    }
    matches = core::RunMmp(*probabilistic, cover).matches;
  } else {
    std::fprintf(stderr, "unknown scheme '%s' (nomp|smp|mmp)\n",
                 args.scheme.c_str());
    return 2;
  }
  const core::MatchSet clusters = core::TransitiveClosure(matches);
  std::printf("%zu matches (%zu after closure) in %.2fs\n", matches.size(),
              clusters.size(), timer.ElapsedSeconds());

  const eval::PrMetrics metrics = eval::ComputePr(*dataset, clusters);
  if (metrics.total_true > 0) {
    std::printf("quality vs ground truth: %s\n", metrics.ToString().c_str());
  }

  // --- write matched pairs.
  if (!args.output.empty()) {
    std::ofstream out(args.output);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.output.c_str());
      return 1;
    }
    for (const data::EntityPair& p : clusters.SortedPairs()) {
      out << p.a << '\t' << p.b << '\t'
          << dataset->entity(p.a).DisplayName() << '\t'
          << dataset->entity(p.b).DisplayName() << '\n';
    }
    std::printf("wrote %zu pairs to %s\n", clusters.size(),
                args.output.c_str());
  }

  // --- observability exports (final state; the stream hook may have
  // written interim metrics snapshots already).
  if (!args.metrics_json.empty()) {
    const Status written = obs::WriteMetricsJson(args.metrics_json);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("metrics: %s\n", args.metrics_json.c_str());
  }
  if (!args.trace_json.empty()) {
    const Status written =
        obs::TraceRecorder::Global().WriteJson(args.trace_json);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("trace: %s\n", args.trace_json.c_str());
  }
  return 0;
}
