// A small command-line deduplication tool around the library — the shape a
// downstream user would actually run:
//
//   dedup_tool [--input corpus.tsv] [--output matches.tsv]
//              [--matcher mln|rules] [--scheme nomp|smp|mmp]
//              [--machines N] [--generate hepth|dblp] [--scale S]
//              [--blocking canopy|lsh] [--threads N]
//              [--stream] [--stream-chunk N] [--arrival-seed S]
//              [--snapshot-dir DIR] [--snapshot-every N] [--recover]
//              [--fsync] [--serve] [--query-file PATH] [--qps N]
//              [--metrics-json PATH] [--trace-json PATH]
//              [--stats-port N] [--stats-ready-file PATH]
//              [--slow-query-log PATH] [--slow-query-us T]
//              [--stall-deadline-ms MS]
//
// Every flag accepts both `--flag value` and `--flag=value`; the full
// surface lives in one place, serve::DedupToolOptions
// (src/serve/tool_options.h), parsed by ParseDedupToolArgs — this file
// only consumes the resulting structs.
//
// Reads a TSV corpus (see data/tsv_io.h; --generate synthesises one
// instead), builds candidate pairs and a total cover, runs the chosen
// matcher under the chosen scheme (optionally grid-parallel), prints
// metrics when ground truth is present, and writes the matched pairs.
//
// --stream switches to the streaming ingest subsystem: references are
// replayed in a seeded random arrival order through
// stream::StreamingMatcher (chunked AddBatch ingest), the result is
// checked for equivalence against the batch SMP run, and the per-insert
// work counters are printed.
//
// --serve (implies --stream) stands up a serve::MatchService over the
// streaming matcher and answers point queries FROM A SECOND THREAD while
// ingest proceeds — the online serving demo. Queries come from
// --query-file (one reference id per line) or, by default, a
// deterministic sample of the corpus references; --qps throttles the
// query thread (0 = as fast as possible). Persistence does not combine
// with --serve yet.
//
// --snapshot-dir (default: the CEM_SNAPSHOT_DIR environment variable)
// makes the streamed run durable: every chunk is WAL-appended before it
// is applied and a snapshot is taken every --snapshot-every inserts (see
// persist/recovery.h). --recover resumes from the directory's state —
// newest complete snapshot plus WAL tail — and streams only the
// references that were not yet ingested; the recovered run converges to
// the same matches as an uninterrupted one. The arrival seed and chunk
// size are persisted alongside the state (persist::ArrivalMeta): a
// recovered run continues the exact shuffle the crashed one fed, and
// passing conflicting flags is an error rather than a silent divergence.
// --fsync extends durability from process crashes to power loss.
//
// Observability: --metrics-json writes the process metrics registry
// (counters, gauges, latency histograms — see src/obs/metrics.h) as one
// flat JSON object at exit, and refreshes it periodically during --stream
// ingest so an operator can watch a long run converge. --trace-json
// enables scoped-span tracing and writes a Chrome trace_event array
// (load it in chrome://tracing or Perfetto). --stats-port serves the
// registry LIVE over loopback HTTP for the whole run — /metrics
// (Prometheus text), /metrics.json, /slowlog.json and /healthz; 0 binds
// an ephemeral port, written to --stats-ready-file so scripts can find
// it (the tool then lingers at exit until that file is deleted, so a
// scraping script never races the shutdown). Under --serve the endpoint
// additionally reads the serving layer:
// rolling-window gauges refresh per scrape, /slowlog.json carries the
// worst queries over --slow-query-us (also written to --slow-query-log at
// exit), and /healthz turns 503 when ingest stalls past
// --stall-deadline-ms against pending work.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "blocking/lsh_cover.h"
#include "core/grid_executor.h"
#include "core/message_passing.h"
#include "data/bib_generator.h"
#include "data/tsv_io.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "mln/mln_matcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "persist/recovery.h"
#include "rules/rules_matcher.h"
#include "serve/match_service.h"
#include "serve/stats_server.h"
#include "serve/tool_options.h"
#include "stream/streaming_matcher.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace cem;

/// What the stats endpoint reads while --serve runs. The service and
/// watchdog live on RunServe's stack but the StatsServer outlives them
/// (it spans the whole process), so the pointers are published under a
/// mutex and cleared before RunServe returns — a scrape between runs sees
/// registry metrics, an empty slow log and a healthy verdict.
struct LiveServeState {
  std::mutex mu;
  const serve::MatchService* service = nullptr;
  const obs::IngestWatchdog* watchdog = nullptr;
};

/// Stats-endpoint sources over `state` (each call re-reads the pointers,
/// so they work before, during and after the serve run).
serve::StatsSources SourcesOf(LiveServeState& state) {
  serve::StatsSources sources;
  sources.refresh = [&state] {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.service != nullptr) state.service->PublishWindowGauges();
  };
  sources.slowlog_json = [&state] {
    std::lock_guard<std::mutex> lock(state.mu);
    return state.service != nullptr ? state.service->slow_query_log().ToJson()
                                    : std::string("[]\n");
  };
  sources.healthy = [&state] {
    std::lock_guard<std::mutex> lock(state.mu);
    return state.watchdog == nullptr || !state.watchdog->stalled();
  };
  return sources;
}

/// The query workload of --serve: ids from --query-file, or a
/// deterministic sample of the corpus references (every k-th id, capped
/// at ~1024 queries — enough to exercise the service without the sample
/// itself dominating the run).
std::vector<data::EntityId> LoadQueries(const serve::ServeToolOptions& opts,
                                        const data::Dataset& dataset) {
  std::vector<data::EntityId> queries;
  if (!opts.query_file.empty()) {
    std::ifstream in(opts.query_file);
    unsigned long long id = 0;
    while (in >> id) queries.push_back(static_cast<data::EntityId>(id));
    return queries;
  }
  const std::vector<data::EntityId>& refs = dataset.author_refs();
  const size_t step = std::max<size_t>(1, refs.size() / 1024);
  for (size_t i = 0; i < refs.size(); i += step) queries.push_back(refs[i]);
  return queries;
}

/// The --serve run: streamed ingest through a MatchService on this
/// thread, point queries against it from a reader thread, both over the
/// same live state. Returns the converged match set.
core::MatchSet RunServe(const core::Matcher& matcher,
                        const serve::DedupToolOptions& args,
                        const ExecutionContext& ctx,
                        LiveServeState& live) {
  stream::StreamingOptions stream_options;
  stream_options.context = &ctx;
  stream::StreamingMatcher streaming(matcher, stream_options);
  serve::ServeOptions serve_options;
  serve_options.slow_query_us = args.obs.slow_query_us;
  serve::MatchService service(streaming, serve_options);
  // Ingest-stall watchdog: drains advance per ingest chunk, so a frozen
  // drain count against a non-empty pending hint past the deadline flags
  // the run as stalled (/healthz 503). Declared after the matcher it
  // samples, so its monitor thread joins first on unwind.
  obs::IngestWatchdog watchdog(
      {std::chrono::milliseconds(args.obs.stall_deadline_ms),
       std::chrono::milliseconds(50)});
  watchdog.Start([&streaming] { return streaming.drains_completed(); },
                 [&streaming] {
                   return static_cast<uint64_t>(streaming.pending_hint());
                 });
  {
    std::lock_guard<std::mutex> lock(live.mu);
    live.service = &service;
    live.watchdog = &watchdog;
  }
  // Unpublish before the service leaves scope, whatever exit path runs.
  struct Unpublish {
    LiveServeState& live;
    ~Unpublish() {
      std::lock_guard<std::mutex> lock(live.mu);
      live.service = nullptr;
      live.watchdog = nullptr;
    }
  } unpublish{live};

  const data::Dataset& dataset = matcher.dataset();
  std::vector<data::EntityId> refs = dataset.author_refs();
  Rng rng(args.stream.arrival_seed);
  rng.Shuffle(refs);
  const std::vector<data::EntityId> queries =
      LoadQueries(args.serve, dataset);
  if (queries.empty()) {
    std::fprintf(stderr, "no queries to serve\n");
    return core::MatchSet();
  }

  std::atomic<bool> ingest_done{false};
  std::atomic<uint64_t> queries_answered{0};
  std::atomic<uint64_t> query_errors{0};
  std::thread reader([&] {
    using clock = std::chrono::steady_clock;
    const auto interval =
        args.serve.qps > 0
            ? std::chrono::nanoseconds(1'000'000'000ull / args.serve.qps)
            : std::chrono::nanoseconds(0);
    auto next = clock::now();
    size_t i = 0;
    while (!ingest_done.load(std::memory_order_acquire)) {
      const Result<serve::QueryResult> answer =
          service.Lookup({queries[i % queries.size()]});
      ++i;
      if (answer.ok()) {
        queries_answered.fetch_add(1, std::memory_order_relaxed);
      } else {
        query_errors.fetch_add(1, std::memory_order_relaxed);
      }
      if (interval.count() > 0) {
        next += interval;
        std::this_thread::sleep_until(next);
      }
    }
  });

  Timer timer;
  const size_t chunk = args.stream.chunk == 0 ? 1 : args.stream.chunk;
  size_t num_chunks = 0;
  for (size_t start = 0; start < refs.size(); start += chunk) {
    streaming.set_pending_hint(refs.size() - start);
    const size_t end = std::min(refs.size(), start + chunk);
    const Status added =
        service.IngestBatch({refs.begin() + start, refs.begin() + end});
    if (!added.ok()) {
      std::fprintf(stderr, "ingest failed at insert %zu: %s\n", start,
                   added.ToString().c_str());
      break;
    }
    ++num_chunks;
  }
  streaming.set_pending_hint(0);
  const double ingest_seconds = timer.ElapsedSeconds();
  ingest_done.store(true, std::memory_order_release);
  reader.join();

  std::printf(
      "served %llu queries (%llu errors) concurrently with %zu refs "
      "ingested in %zu chunks (%.2fs); final epoch %llu\n",
      static_cast<unsigned long long>(queries_answered.load()),
      static_cast<unsigned long long>(query_errors.load()), refs.size(),
      num_chunks, ingest_seconds,
      static_cast<unsigned long long>(service.epoch()));

  // One final query pass at the converged epoch: every answer now reads
  // the same fixpoint a batch rebuild would produce.
  size_t matched_queries = 0;
  for (data::EntityId q : queries) {
    const Result<serve::QueryResult> answer = service.Lookup({q});
    if (answer.ok() && answer->cluster.size() > 1) ++matched_queries;
  }
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  const auto hist = snap.histograms.find("serve_query_us");
  if (hist != snap.histograms.end()) {
    std::printf(
        "query latency: p50 %.1fus p95 %.1fus p99 %.1fus over %llu lookups; "
        "%zu of %zu queries matched into a cluster at the final epoch\n",
        hist->second.p50, hist->second.p95, hist->second.p99,
        static_cast<unsigned long long>(hist->second.count), matched_queries,
        queries.size());
  }
  service.PublishWindowGauges();
  const obs::WindowStats window = service.rolling_window().Over(10);
  std::printf(
      "rolling 10s window: %.0f qps, %.2f%% errors, p99 %.1fus; "
      "%llu slow queries over %.0fus (%llu ingest stall events)\n",
      window.qps, window.error_rate * 100.0, window.p99,
      static_cast<unsigned long long>(service.slow_query_log().slow_count()),
      service.slow_query_log().threshold_us(),
      static_cast<unsigned long long>(watchdog.stall_events()));
  if (!args.obs.slow_query_log.empty()) {
    std::ofstream out(args.obs.slow_query_log, std::ios::trunc);
    if (out) out << service.slow_query_log().ToJson();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n",
                   args.obs.slow_query_log.c_str());
    } else {
      std::printf("slow-query log: %s\n", args.obs.slow_query_log.c_str());
    }
  }
  return streaming.matches();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> raw_args(argv + 1, argv + argc);
  Result<serve::DedupToolOptions> parsed =
      serve::ParseDedupToolArgs(raw_args);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\nusage: dedup_tool [flags]\n%s",
                 parsed.status().ToString().c_str(),
                 serve::DedupToolUsage().c_str());
    return 2;
  }
  serve::DedupToolOptions args = std::move(parsed).value();
  if (args.serve.serve) args.stream.stream = true;

  // --trace-json opts into span recording (otherwise spans cost two clock
  // reads and a relaxed load each — cheap enough to leave compiled in).
  if (!args.obs.trace_json.empty()) {
    obs::TraceRecorder::Global().SetEnabled(true);
  }

  // --stats-port: stand the live stats endpoint up for the whole run
  // (/metrics, /metrics.json, /slowlog.json, /healthz on loopback). The
  // serve-layer sources flow through LiveServeState, published only while
  // RunServe is on the stack.
  LiveServeState live_serve;
  std::unique_ptr<serve::StatsServer> stats_server;
  if (args.obs.stats_port_set) {
    Result<std::unique_ptr<serve::StatsServer>> started =
        serve::StatsServer::Start(static_cast<uint16_t>(args.obs.stats_port),
                                  SourcesOf(live_serve));
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
      return 1;
    }
    stats_server = std::move(*started);
    std::printf("stats: http://127.0.0.1:%u/metrics\n", stats_server->port());
    if (!args.obs.stats_ready_file.empty()) {
      std::ofstream ready(args.obs.stats_ready_file, std::ios::trunc);
      ready << stats_server->port() << '\n';
      ready.flush();
      if (!ready) {
        std::fprintf(stderr, "cannot write %s\n",
                     args.obs.stats_ready_file.c_str());
        return 1;
      }
    }
  }

  // --- execution context: --threads gets a dedicated pool, otherwise the
  // process-wide shared one (CEM_THREADS). Flows through candidate
  // generation, cover construction and the grid run.
  std::optional<ExecutionContext> owned_context;
  if (args.pipeline.threads > 0) owned_context.emplace(args.pipeline.threads);
  const ExecutionContext& ctx =
      owned_context ? *owned_context : ExecutionContext::Default();
  std::printf("execution: %u worker threads, %u LSH shards\n",
              ctx.num_threads(), ctx.num_shards());

  // --- load or generate the corpus.
  std::unique_ptr<data::Dataset> dataset;
  if (!args.corpus.input.empty()) {
    auto loaded = data::LoadDatasetTsv(args.corpus.input);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n",
                   args.corpus.input.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(*loaded);
    dataset->BuildCandidatePairs({}, ctx);
  } else {
    const data::BibConfig config =
        args.corpus.generate == "hepth"
            ? data::BibConfig::HepthLike(args.corpus.scale)
            : data::BibConfig::DblpLike(args.corpus.scale);
    dataset = data::GenerateBibDataset(config, {}, ctx);
    std::printf("generated %s-like corpus at scale %.2f\n",
                args.corpus.generate.c_str(), args.corpus.scale);
  }
  std::printf("%zu author references, %zu candidate pairs\n",
              dataset->author_refs().size(), dataset->num_candidate_pairs());

  // --- cover and matcher.
  const auto strategy = core::ParseBlockingStrategy(args.pipeline.blocking);
  if (!strategy.has_value()) {
    std::fprintf(stderr, "unknown blocking '%s' (canopy|lsh)\n",
                 args.pipeline.blocking.c_str());
    return 2;
  }
  const core::Cover cover =
      blocking::MakeCoverBuilder(*strategy)->Build(*dataset, ctx);
  std::printf("cover (%s blocking): %s\n", args.pipeline.blocking.c_str(),
              cover.Summary(*dataset).c_str());

  std::unique_ptr<core::Matcher> matcher;
  if (args.pipeline.matcher == "mln") {
    matcher = std::make_unique<mln::MlnMatcher>(*dataset);
  } else if (args.pipeline.matcher == "rules") {
    matcher = std::make_unique<rules::RulesMatcher>(*dataset);
  } else {
    std::fprintf(stderr, "unknown matcher '%s' (mln|rules)\n",
                 args.pipeline.matcher.c_str());
    return 2;
  }

  // --- run.
  Timer timer;
  core::MatchSet matches;
  if (args.serve.serve) {
    if (!args.persist.snapshot_dir.empty()) {
      std::printf("note: --serve does not persist; --snapshot-dir ignored\n");
    }
    matches = RunServe(*matcher, args, ctx, live_serve);
    const core::MatchSet batch = core::RunSmp(*matcher, cover).matches;
    std::printf("equivalent to batch SMP rebuild: %s (%zu vs %zu matches)\n",
                matches == batch ? "yes" : "NO", matches.size(),
                batch.size());
  } else if (args.stream.stream) {
    if (args.pipeline.scheme != "smp" || args.pipeline.machines > 1) {
      std::printf(
          "note: --stream drains with SMP semantics in-process; "
          "--scheme/--machines are ignored\n");
    }
    stream::StreamingOptions options;
    options.context = &ctx;
    if (!args.obs.metrics_json.empty()) {
      // Periodic operational snapshot: refresh the stream gauges and
      // rewrite the metrics file every ~1k inserts so a long ingest is
      // observable while it runs, not only at exit.
      options.metrics_every_inserts = 1024;
      options.metrics_hook = [&args](const stream::StreamingMatcher&) {
        const Status written =
            obs::WriteMetricsJson(args.obs.metrics_json);
        if (!written.ok()) {
          std::fprintf(stderr, "warning: %s\n", written.ToString().c_str());
        }
      };
    }
    size_t num_refs = 0;
    size_t num_chunks = 0;
    stream::StreamingStats s;
    if (!args.persist.snapshot_dir.empty()) {
      // Durable ingest: WAL-ahead chunks plus periodic snapshots. The
      // arrival order is the same seeded shuffle ReplayStreaming uses, so
      // a recovered run continues the exact stream a crashed one fed —
      // guaranteed by reconciling the persisted arrival sidecar first.
      const std::string& dir = args.persist.snapshot_dir;
      if (args.persist.recover) {
        const Result<persist::ArrivalMeta> saved =
            persist::ReadArrivalMeta(dir);
        if (saved.ok()) {
          if (args.stream.arrival_seed_set &&
              args.stream.arrival_seed != saved->arrival_seed) {
            std::fprintf(
                stderr,
                "--arrival-seed %llu conflicts with the recorded seed %llu "
                "in %s/arrival.meta; the recovered state was fed from that "
                "shuffle\n",
                static_cast<unsigned long long>(args.stream.arrival_seed),
                static_cast<unsigned long long>(saved->arrival_seed),
                dir.c_str());
            return 2;
          }
          if (args.stream.chunk_set &&
              args.stream.chunk != saved->stream_chunk) {
            std::fprintf(stderr,
                         "--stream-chunk %u conflicts with the recorded "
                         "chunk size %u in %s/arrival.meta\n",
                         args.stream.chunk, saved->stream_chunk,
                         dir.c_str());
            return 2;
          }
          args.stream.arrival_seed = saved->arrival_seed;
          args.stream.chunk = saved->stream_chunk;
        } else {
          std::fprintf(stderr,
                       "warning: %s (%s); trusting --arrival-seed %llu / "
                       "--stream-chunk %u to match the crashed run\n",
                       saved.status().ToString().c_str(), dir.c_str(),
                       static_cast<unsigned long long>(
                           args.stream.arrival_seed),
                       args.stream.chunk);
        }
      }
      std::vector<data::EntityId> refs = dataset->author_refs();
      Rng rng(args.stream.arrival_seed);
      rng.Shuffle(refs);
      persist::PersistentStreamingMatcher persistent(
          *matcher, options,
          {dir, args.persist.snapshot_every, nullptr, args.persist.fsync});
      if (args.persist.recover) {
        persist::RecoveryInfo info;
        const Status recovered = persistent.Recover(&info);
        if (!recovered.ok()) {
          std::fprintf(stderr, "recovery from %s failed: %s\n", dir.c_str(),
                       recovered.ToString().c_str());
          return 1;
        }
        std::printf(
            "recovered %zu inserts from %s (%s at %zu inserts, %zu WAL "
            "chunks replayed, %zu snapshot(s) skipped%s)\n",
            info.inserts_recovered, dir.c_str(),
            info.used_snapshot ? "snapshot" : "no snapshot",
            info.snapshot_inserts, info.chunks_replayed,
            info.snapshots_skipped,
            info.wal_tail_truncated ? ", torn WAL tail dropped" : "");
      } else {
        const Status started = persistent.Start();
        if (!started.ok()) {
          std::fprintf(stderr, "cannot start persisted stream: %s\n",
                       started.ToString().c_str());
          return 1;
        }
        const Status wrote = persist::WriteArrivalMeta(
            dir, {args.stream.arrival_seed, args.stream.chunk});
        if (!wrote.ok()) {
          std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
          return 1;
        }
      }
      const size_t chunk = args.stream.chunk == 0 ? 1 : args.stream.chunk;
      for (size_t start = persistent.num_live(); start < refs.size();
           start += chunk) {
        const size_t end = std::min(refs.size(), start + chunk);
        const Status added = persistent.AddBatch(
            {refs.begin() + start, refs.begin() + end});
        if (!added.ok()) {
          std::fprintf(stderr, "ingest failed at insert %zu: %s\n", start,
                       added.ToString().c_str());
          return 1;
        }
        ++num_chunks;
      }
      matches = persistent.matcher().matches();
      s = persistent.matcher().stats();
      num_refs = refs.size();
    } else {
      const eval::StreamingReplayResult replay =
          eval::ReplayStreaming(*matcher, args.stream.arrival_seed,
                                args.stream.chunk, options);
      matches = replay.matches;
      s = replay.stats;
      num_refs = replay.num_refs;
      num_chunks = replay.num_chunks;
    }
    std::printf(
        "streamed %zu refs in %zu chunks (chunk %u, arrival seed %llu) "
        "in %.2fs\n",
        num_refs, num_chunks, args.stream.chunk,
        static_cast<unsigned long long>(args.stream.arrival_seed),
        timer.ElapsedSeconds());
    if (s.ingest.inserts > 0) {
      std::printf(
          "per-insert work: %.2f canopies touched (of %zu total), %.1f pairs "
          "re-scored, %.2f neighborhood evaluations\n",
          static_cast<double>(s.ingest.canopies_touched) /
              static_cast<double>(s.ingest.inserts),
          s.ingest.seeds_created,
          static_cast<double>(s.matching.pairs_rescored) /
              static_cast<double>(s.ingest.inserts),
          static_cast<double>(s.matching.neighborhood_evaluations) /
              static_cast<double>(s.ingest.inserts));
    } else {
      std::printf("no author references to stream\n");
    }
    const core::MatchSet batch = core::RunSmp(*matcher, cover).matches;
    std::printf("equivalent to batch SMP rebuild: %s (%zu vs %zu matches)\n",
                matches == batch ? "yes" : "NO", matches.size(),
                batch.size());
  } else if (args.pipeline.machines > 1) {
    core::GridOptions options;
    options.num_machines = args.pipeline.machines;
    options.context = &ctx;  // Reuse the blocking front-end's pool.
    options.scheme = args.pipeline.scheme == "nomp"  ? core::MpScheme::kNoMp
                     : args.pipeline.scheme == "smp" ? core::MpScheme::kSmp
                                                     : core::MpScheme::kMmp;
    matches = core::RunGrid(*matcher, cover, options).matches;
  } else if (args.pipeline.scheme == "nomp") {
    matches = core::RunNoMp(*matcher, cover).matches;
  } else if (args.pipeline.scheme == "smp") {
    matches = core::RunSmp(*matcher, cover).matches;
  } else if (args.pipeline.scheme == "mmp") {
    auto* probabilistic =
        dynamic_cast<core::ProbabilisticMatcher*>(matcher.get());
    if (probabilistic == nullptr) {
      std::fprintf(stderr,
                   "MMP needs a probabilistic matcher; use --scheme smp "
                   "with --matcher rules\n");
      return 2;
    }
    matches = core::RunMmp(*probabilistic, cover).matches;
  } else {
    std::fprintf(stderr, "unknown scheme '%s' (nomp|smp|mmp)\n",
                 args.pipeline.scheme.c_str());
    return 2;
  }
  const core::MatchSet clusters = core::TransitiveClosure(matches);
  std::printf("%zu matches (%zu after closure) in %.2fs\n", matches.size(),
              clusters.size(), timer.ElapsedSeconds());

  const eval::PrMetrics metrics = eval::ComputePr(*dataset, clusters);
  if (metrics.total_true > 0) {
    std::printf("quality vs ground truth: %s\n", metrics.ToString().c_str());
  }

  // --- write matched pairs.
  if (!args.output.empty()) {
    std::ofstream out(args.output);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.output.c_str());
      return 1;
    }
    for (const data::EntityPair& p : clusters.SortedPairs()) {
      out << p.a << '\t' << p.b << '\t'
          << dataset->entity(p.a).DisplayName() << '\t'
          << dataset->entity(p.b).DisplayName() << '\n';
    }
    std::printf("wrote %zu pairs to %s\n", clusters.size(),
                args.output.c_str());
  }

  // --- observability exports (final state; the stream hook may have
  // written interim metrics snapshots already).
  if (!args.obs.metrics_json.empty()) {
    const Status written = obs::WriteMetricsJson(args.obs.metrics_json);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("metrics: %s\n", args.obs.metrics_json.c_str());
  }
  if (!args.obs.trace_json.empty()) {
    const Status written =
        obs::TraceRecorder::Global().WriteJson(args.obs.trace_json);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("trace: %s\n", args.obs.trace_json.c_str());
  }

  // --stats-ready-file doubles as a scrape handshake: the port file was
  // written at startup for the orchestrating script; now that every
  // export above reflects final state, keep the stats endpoint alive
  // until the script deletes the file (bounded so an orphaned run still
  // exits). This gives CI a race-free scrape: poll the file for the
  // port, read the endpoints, remove the file, wait for the tool.
  if (stats_server != nullptr && !args.obs.stats_ready_file.empty()) {
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::filesystem::exists(args.obs.stats_ready_file) &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return 0;
}
