#!/usr/bin/env bash
# Regenerates the blessed bench-regression baselines under bench/baselines/
# and stages them for commit. Run after an intentional counter change (new
# counter, renamed counter, algorithm that genuinely does less/more work),
# then commit the result — ci/check.sh diffs every CI run against these
# files.
#
# Baselines hold the tracked "counter_*" metrics only (deterministic work
# measures); wall times and tables are stripped so the committed files stay
# byte-stable across hosts.
#
# With CEM_BLESS_WALL=1 it additionally writes wall-time baselines (the
# "wall_ms_*" keys) under bench/baselines-wall/. Those are host-specific by
# nature — bless them on the quiet runner that will gate with
# CEM_CI_GATE_WALL=1, and do not expect them to transfer between machines.
#
# Knobs: BUILD_DIR (default build-ci), CEM_BENCH_SCALE (default 0.05 — must
# match the scale ci/check.sh runs the gate at), CEM_BLESS_WALL=1.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build-ci}"
BASELINE_DIR="${REPO_ROOT}/bench/baselines"
SCALE="${CEM_BENCH_SCALE:-0.05}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== configure + build bench binaries (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCEM_WERROR=ON > /dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target bench_ablation_blocking bench_bench_streaming bench_bench_persist \
  bench_bench_hotpath bench_bench_serve

echo "== run benches at CEM_BENCH_SCALE=${SCALE}"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT
CEM_BENCH_SCALE="${SCALE}" CEM_BENCH_JSON_DIR="${TMP_DIR}" \
  "${BUILD_DIR}/ablation_blocking" > /dev/null
CEM_BENCH_SCALE="${SCALE}" CEM_BENCH_JSON_DIR="${TMP_DIR}" \
  "${BUILD_DIR}/bench_streaming" > /dev/null
CEM_BENCH_SCALE="${SCALE}" CEM_BENCH_JSON_DIR="${TMP_DIR}" \
  "${BUILD_DIR}/bench_persist" > /dev/null
CEM_BENCH_SCALE="${SCALE}" CEM_BENCH_JSON_DIR="${TMP_DIR}" \
  "${BUILD_DIR}/bench_hotpath" > /dev/null
CEM_BENCH_SCALE="${SCALE}" CEM_BENCH_JSON_DIR="${TMP_DIR}" \
  "${BUILD_DIR}/bench_serve" > /dev/null

mkdir -p "${BASELINE_DIR}"
for report in "${TMP_DIR}"/BENCH_*.json; do
  name="$(basename "${report}")"
  slug="${name#BENCH_}"
  slug="${slug%.json}"
  # Keep only the tracked counters; everything else (tables, wall times)
  # churns across hosts and would make the committed baseline noisy.
  counters="$(grep -o '"counter_[^"]*": *[-+0-9.eE]*' "${report}" \
    | sed 's/$/,/' | tr -d '\n' | sed 's/,$//; s/,/, /g')"
  if [[ -z "${counters}" ]]; then
    echo "-- ${name}: no tracked counters; skipped"
    continue
  fi
  printf '{"bench": "%s", "scale": %s, %s}\n' \
    "${slug}" "${SCALE}" "${counters}" > "${BASELINE_DIR}/${name}"
  echo "-- blessed ${BASELINE_DIR#"${REPO_ROOT}"/}/${name}"
done

# Optional wall-time bless: keep only the wall_ms_* keys. These files are
# a property of the machine that produced them — bless on the runner that
# gates (CEM_CI_GATE_WALL=1), not on a laptop.
if [[ "${CEM_BLESS_WALL:-0}" == "1" ]]; then
  WALL_DIR="${REPO_ROOT}/bench/baselines-wall"
  mkdir -p "${WALL_DIR}"
  for report in "${TMP_DIR}"/BENCH_*.json; do
    name="$(basename "${report}")"
    slug="${name#BENCH_}"
    slug="${slug%.json}"
    walls="$(grep -o '"wall_ms_[^"]*": *[-+0-9.eE]*' "${report}" \
      | sed 's/$/,/' | tr -d '\n' | sed 's/,$//; s/,/, /g')"
    if [[ -z "${walls}" ]]; then
      echo "-- ${name}: no wall_ms_ sections; wall bless skipped"
      continue
    fi
    printf '{"bench": "%s", "scale": %s, %s}\n' \
      "${slug}" "${SCALE}" "${walls}" > "${WALL_DIR}/${name}"
    echo "-- blessed ${WALL_DIR#"${REPO_ROOT}"/}/${name}"
  done
  git -C "${REPO_ROOT}" add "${WALL_DIR}"
fi

git -C "${REPO_ROOT}" add "${BASELINE_DIR}"
echo "== staged; review with 'git diff --cached bench/baselines' and commit"
