#!/usr/bin/env bash
# Regenerates the blessed bench-regression baselines under bench/baselines/
# and stages them for commit. Run after an intentional counter change (new
# counter, renamed counter, algorithm that genuinely does less/more work),
# then commit the result — ci/check.sh diffs every CI run against these
# files.
#
# Baselines hold the tracked "counter_*" metrics only (deterministic work
# measures); wall times and tables are stripped so the committed files stay
# byte-stable across hosts.
#
# Knobs: BUILD_DIR (default build-ci), CEM_BENCH_SCALE (default 0.05 — must
# match the scale ci/check.sh runs the gate at).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build-ci}"
BASELINE_DIR="${REPO_ROOT}/bench/baselines"
SCALE="${CEM_BENCH_SCALE:-0.05}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== configure + build bench binaries (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCEM_WERROR=ON > /dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target bench_ablation_blocking bench_bench_streaming bench_bench_persist

echo "== run benches at CEM_BENCH_SCALE=${SCALE}"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT
CEM_BENCH_SCALE="${SCALE}" CEM_BENCH_JSON_DIR="${TMP_DIR}" \
  "${BUILD_DIR}/ablation_blocking" > /dev/null
CEM_BENCH_SCALE="${SCALE}" CEM_BENCH_JSON_DIR="${TMP_DIR}" \
  "${BUILD_DIR}/bench_streaming" > /dev/null
CEM_BENCH_SCALE="${SCALE}" CEM_BENCH_JSON_DIR="${TMP_DIR}" \
  "${BUILD_DIR}/bench_persist" > /dev/null

mkdir -p "${BASELINE_DIR}"
for report in "${TMP_DIR}"/BENCH_*.json; do
  name="$(basename "${report}")"
  slug="${name#BENCH_}"
  slug="${slug%.json}"
  # Keep only the tracked counters; everything else (tables, wall times)
  # churns across hosts and would make the committed baseline noisy.
  counters="$(grep -o '"counter_[^"]*": *[-+0-9.eE]*' "${report}" \
    | sed 's/$/,/' | tr -d '\n' | sed 's/,$//; s/,/, /g')"
  if [[ -z "${counters}" ]]; then
    echo "-- ${name}: no tracked counters; skipped"
    continue
  fi
  printf '{"bench": "%s", "scale": %s, %s}\n' \
    "${slug}" "${SCALE}" "${counters}" > "${BASELINE_DIR}/${name}"
  echo "-- blessed ${BASELINE_DIR#"${REPO_ROOT}"/}/${name}"
done

git -C "${REPO_ROOT}" add "${BASELINE_DIR}"
echo "== staged; review with 'git diff --cached bench/baselines' and commit"
