#!/usr/bin/env bash
# CI gate: configure + build (warnings as errors) + tier-1 tests +
# header self-containment + format check + bench smoke runs + a bench
# regression gate (tracked counters diffed against the previous run's
# BENCH_*.json reports), then an AddressSanitizer build re-running the
# tier-1 suite. Run from anywhere.
# Set CEM_CI_SKIP_ASAN=1 to skip the sanitizer stage; BENCH_BASELINE_DIR
# overrides where the regression baseline reports live.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build-ci}"
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-${REPO_ROOT}/build-ci-asan}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== configure (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCEM_WERROR=ON

echo "== build (all targets, -j${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== header self-containment check"
cmake --build "${BUILD_DIR}" --target header_check -j "${JOBS}"

echo "== format check"
cmake --build "${BUILD_DIR}" --target format_check

echo "== ctest -L tier1"
ctest --test-dir "${BUILD_DIR}" -L tier1 -j "${JOBS}" --output-on-failure

echo "== ctest -L bench_smoke"
# ablation_blocking is excluded here: the regression gate below runs the
# same binary at the same scale (with JSON on), so one run covers both.
ctest --test-dir "${BUILD_DIR}" -L bench_smoke -E bench_smoke_ablation_blocking \
  -j "${JOBS}" --output-on-failure

echo "== bench regression gate (tracked counters, >15% slowdown fails)"
BENCH_JSON_DIR="${BUILD_DIR}/bench-json"
BENCH_BASELINE_DIR="${BENCH_BASELINE_DIR:-${REPO_ROOT}/.bench-baseline}"
rm -rf "${BENCH_JSON_DIR}"
mkdir -p "${BENCH_JSON_DIR}"
CEM_BENCH_SCALE=0.05 CEM_BENCH_JSON_DIR="${BENCH_JSON_DIR}" \
  "${BUILD_DIR}/ablation_blocking" > /dev/null
if [[ -d "${BENCH_BASELINE_DIR}" ]]; then
  for report in "${BENCH_JSON_DIR}"/BENCH_*.json; do
    base="${BENCH_BASELINE_DIR}/$(basename "${report}")"
    if [[ -f "${base}" ]]; then
      echo "-- $(basename "${report}")"
      "${BUILD_DIR}/bench_diff" "${base}" "${report}" --max-slowdown 0.15
    else
      echo "-- $(basename "${report}"): no baseline yet"
    fi
  done
else
  echo "no baseline at ${BENCH_BASELINE_DIR}; this run records the first one"
fi
mkdir -p "${BENCH_BASELINE_DIR}"
cp "${BENCH_JSON_DIR}"/BENCH_*.json "${BENCH_BASELINE_DIR}/"

if [[ "${CEM_CI_SKIP_ASAN:-0}" != "1" ]]; then
  echo "== ASAN configure (${ASAN_BUILD_DIR})"
  cmake -B "${ASAN_BUILD_DIR}" -S "${REPO_ROOT}" \
    -DCEM_SANITIZE=address -DCEM_BUILD_BENCH=OFF -DCEM_BUILD_EXAMPLES=OFF

  echo "== ASAN build (-j${JOBS})"
  cmake --build "${ASAN_BUILD_DIR}" -j "${JOBS}"

  echo "== ASAN ctest -L tier1"
  ctest --test-dir "${ASAN_BUILD_DIR}" -L tier1 -j "${JOBS}" --output-on-failure
fi

echo "== OK"
