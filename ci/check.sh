#!/usr/bin/env bash
# CI gate: configure + build (warnings as errors) + tier-1 tests (once at
# the default SIMD dispatch and once forced CEM_SIMD=scalar) + header
# self-containment + format check + bench smoke runs + a bench regression
# gate (tracked counters diffed against the blessed baselines committed
# under bench/baselines/) + a wall-time stage (informational by default,
# gating under CEM_CI_GATE_WALL=1), an AddressSanitizer build re-running
# the tier-1 suite, and a ThreadSanitizer build re-running the
# concurrency-labeled suites. Run from anywhere; a fresh checkout passes
# end-to-end using only the committed baselines.
#
# Knobs:
#   CEM_CI_SKIP_ASAN=1    skip the AddressSanitizer stage
#   CEM_CI_SKIP_TSAN=1    skip the ThreadSanitizer stage
#   BENCH_BASELINE_DIR    override where the blessed baseline reports live
#                         (default: bench/baselines; bless new ones with
#                         ci/update_baselines.sh)
#   CEM_CI_GATE_WALL=1    make the wall-time stage gating (>25% slowdown on
#                         any blessed wall_ms_* fails). Off the dedicated
#                         quiet runner the stage is informational — shared
#                         hosts are too noisy to gate wall clocks.
#   CEM_WALL_BASELINE_DIR where the blessed wall-time baselines live
#                         (default: bench/baselines-wall; host-specific —
#                         bless with CEM_BLESS_WALL=1 ci/update_baselines.sh
#                         on the runner that will gate)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build-ci}"
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-${REPO_ROOT}/build-ci-asan}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-${REPO_ROOT}/build-ci-tsan}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

# Pick up ccache when available (the GitHub workflow restores its cache
# between runs; local runs just get faster rebuilds).
CMAKE_EXTRA_ARGS=()
if command -v ccache > /dev/null 2>&1; then
  CMAKE_EXTRA_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

echo "== configure (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCEM_WERROR=ON \
  "${CMAKE_EXTRA_ARGS[@]}"

echo "== build (all targets, -j${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== header self-containment check"
cmake --build "${BUILD_DIR}" --target header_check -j "${JOBS}"

echo "== format check"
cmake --build "${BUILD_DIR}" --target format_check

echo "== ctest -L tier1"
ctest --test-dir "${BUILD_DIR}" -L tier1 -j "${JOBS}" --output-on-failure

echo "== ctest -L tier1 (CEM_SIMD=scalar)"
# The full suite again with the SIMD dispatch forced off: proves the
# scalar fallback path is a complete, correct implementation on its own
# (what a non-AVX2 host would run), not just the AVX2 kernels' shadow.
CEM_SIMD=scalar ctest --test-dir "${BUILD_DIR}" -L tier1 -j "${JOBS}" \
  --output-on-failure

echo "== ctest -L bench_smoke"
# ablation_blocking, bench_streaming, bench_persist, bench_hotpath and
# bench_serve are excluded here: the regression gate below runs the same
# binaries at the same scale (with JSON on), so one run covers both.
ctest --test-dir "${BUILD_DIR}" -L bench_smoke \
  -E "bench_smoke_ablation_blocking|bench_smoke_streaming|bench_smoke_persist|bench_smoke_hotpath|bench_smoke_serve" \
  -j "${JOBS}" --output-on-failure

echo "== bench regression gate (tracked counters, >15% slowdown fails)"
BENCH_JSON_DIR="${BUILD_DIR}/bench-json"
BENCH_BASELINE_DIR="${BENCH_BASELINE_DIR:-${REPO_ROOT}/bench/baselines}"
if [[ ! -d "${BENCH_BASELINE_DIR}" ]]; then
  echo "error: no baseline dir at ${BENCH_BASELINE_DIR}." >&2
  echo "Bless baselines with ci/update_baselines.sh and commit them." >&2
  exit 1
fi
rm -rf "${BENCH_JSON_DIR}"
mkdir -p "${BENCH_JSON_DIR}"
CEM_BENCH_SCALE=0.05 CEM_BENCH_JSON_DIR="${BENCH_JSON_DIR}" \
  "${BUILD_DIR}/ablation_blocking" > /dev/null
CEM_BENCH_SCALE=0.05 CEM_BENCH_JSON_DIR="${BENCH_JSON_DIR}" \
  "${BUILD_DIR}/bench_streaming" > /dev/null
CEM_BENCH_SCALE=0.05 CEM_BENCH_JSON_DIR="${BENCH_JSON_DIR}" \
  "${BUILD_DIR}/bench_persist" > /dev/null
CEM_BENCH_SCALE=0.05 CEM_BENCH_JSON_DIR="${BENCH_JSON_DIR}" \
  "${BUILD_DIR}/bench_hotpath" > /dev/null
CEM_BENCH_SCALE=0.05 CEM_BENCH_JSON_DIR="${BENCH_JSON_DIR}" \
  "${BUILD_DIR}/bench_serve" > /dev/null
shopt -s nullglob
compared=0
for report in "${BENCH_JSON_DIR}"/BENCH_*.json; do
  base="${BENCH_BASELINE_DIR}/$(basename "${report}")"
  if [[ -f "${base}" ]]; then
    echo "-- $(basename "${report}")"
    "${BUILD_DIR}/bench_diff" "${base}" "${report}" --max-slowdown 0.15
    compared=$((compared + 1))
  else
    echo "-- $(basename "${report}"): NO BASELINE — run ci/update_baselines.sh to bless one"
  fi
done
# A baseline whose bench no longer emits a report would silently stop
# gating; deleting a bench must delete (or re-bless) its baseline too.
for base in "${BENCH_BASELINE_DIR}"/BENCH_*.json; do
  if [[ ! -f "${BENCH_JSON_DIR}/$(basename "${base}")" ]]; then
    echo "error: baseline $(basename "${base}") has no current report;" \
      "delete it or re-bless with ci/update_baselines.sh" >&2
    exit 1
  fi
done
shopt -u nullglob
if [[ "${compared}" -eq 0 ]]; then
  echo "error: bench regression gate compared nothing (no reports matched" \
    "a baseline) — the gate must never pass vacuously" >&2
  exit 1
fi

echo "== wall-time stage (bench_hotpath et al.)"
# Diffs the wall_ms_* sections of the reports produced above against the
# blessed wall baselines. Wall clocks are host-specific, so the baselines
# are blessed per-runner (CEM_BLESS_WALL=1 ci/update_baselines.sh) and the
# stage only *gates* when CEM_CI_GATE_WALL=1 — everywhere else it prints
# the deltas and moves on. With the gate on, >25% slowdown on any blessed
# wall_ms_* key fails, and comparing nothing is an error (a gate must
# never pass vacuously).
CEM_WALL_BASELINE_DIR="${CEM_WALL_BASELINE_DIR:-${REPO_ROOT}/bench/baselines-wall}"
wall_compared=0
shopt -s nullglob
for base in "${CEM_WALL_BASELINE_DIR}"/BENCH_*.json; do
  report="${BENCH_JSON_DIR}/$(basename "${base}")"
  if [[ ! -f "${report}" ]]; then
    echo "-- $(basename "${base}"): baseline has no current report; skipped"
    continue
  fi
  echo "-- $(basename "${base}")"
  if [[ "${CEM_CI_GATE_WALL:-0}" == "1" ]]; then
    "${BUILD_DIR}/bench_diff" "${base}" "${report}" --gate-wall 0.25
  else
    "${BUILD_DIR}/bench_diff" "${base}" "${report}"
  fi
  wall_compared=$((wall_compared + 1))
done
shopt -u nullglob
if [[ "${wall_compared}" -eq 0 ]]; then
  if [[ "${CEM_CI_GATE_WALL:-0}" == "1" ]]; then
    echo "error: CEM_CI_GATE_WALL=1 but no wall baselines matched a report" \
      "under ${CEM_WALL_BASELINE_DIR}; bless them on this runner with" \
      "CEM_BLESS_WALL=1 ci/update_baselines.sh" >&2
    exit 1
  fi
  echo "-- no wall baselines under ${CEM_WALL_BASELINE_DIR}; informational" \
    "run only (bless with CEM_BLESS_WALL=1 ci/update_baselines.sh)"
fi

echo "== observability exports (dedup_tool --metrics-json/--trace-json)"
# Exercise the operational surface end to end on a tiny streamed workload,
# then schema-check both artifacts: the metrics object must carry integral
# counter_* keys and numeric wall_ms_/gauge_/hist_ keys; the trace must be
# one well-formed trace_event JSON array.
OBS_DIR="${BUILD_DIR}/obs-json"
rm -rf "${OBS_DIR}"
mkdir -p "${OBS_DIR}"
"${BUILD_DIR}/dedup_tool" --generate dblp --scale 0.05 --stream \
  --metrics-json="${OBS_DIR}/metrics.json" \
  --trace-json="${OBS_DIR}/trace.json" > /dev/null
"${BUILD_DIR}/bench_diff" --check-metrics "${OBS_DIR}/metrics.json"
"${BUILD_DIR}/bench_diff" --check-trace "${OBS_DIR}/trace.json"

echo "== live stats endpoint (dedup_tool --serve --stats-port)"
# Boot a served ingest with the stats listener on an ephemeral port,
# scrape every endpoint over loopback (bash /dev/tcp — no curl
# dependency), and schema-check the scrapes: /metrics must be valid
# Prometheus text exposition, /metrics.json the same flat-JSON schema as
# the file export, /healthz healthy. The ready file is the handshake:
# the tool publishes its port there and stays alive until we delete it,
# so the scrapes never race the run's natural exit; the tool's own clean
# exit afterwards proves the server shut down in an orderly way.
STATS_READY="${OBS_DIR}/stats.port"
"${BUILD_DIR}/dedup_tool" --generate dblp --scale 0.05 --stream --serve \
  --qps 2000 --stats-port 0 --stats-ready-file "${STATS_READY}" \
  --slow-query-log "${OBS_DIR}/slowlog.json" --slow-query-us 0 \
  > "${OBS_DIR}/serve.log" &
TOOL_PID=$!
for _ in $(seq 1 100); do
  [[ -s "${STATS_READY}" ]] && break
  sleep 0.1
done
[[ -s "${STATS_READY}" ]] || {
  echo "error: stats server never published its port" >&2
  kill "${TOOL_PID}" 2> /dev/null || true
  exit 1
}
STATS_PORT="$(cat "${STATS_READY}")"
scrape() { # scrape <path> <outfile>: body of one HTTP/1.0 GET
  exec 9<> "/dev/tcp/127.0.0.1/${STATS_PORT}"
  printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&9
  sed -e '1,/^\r$/d' <&9 > "$2"
  exec 9>&-
}
scrape /metrics "${OBS_DIR}/scrape.prom"
scrape /metrics.json "${OBS_DIR}/scrape.json"
scrape /slowlog.json "${OBS_DIR}/scrape_slowlog.json"
scrape /healthz "${OBS_DIR}/scrape_healthz.txt"
"${BUILD_DIR}/bench_diff" --check-prometheus "${OBS_DIR}/scrape.prom"
"${BUILD_DIR}/bench_diff" --check-metrics "${OBS_DIR}/scrape.json"
grep -q '^ok$' "${OBS_DIR}/scrape_healthz.txt" || {
  echo "error: /healthz scrape was not healthy:" >&2
  cat "${OBS_DIR}/scrape_healthz.txt" >&2
  kill "${TOOL_PID}" 2> /dev/null || true
  exit 1
}
rm -f "${STATS_READY}"  # Release the handshake; the tool may now exit.
wait "${TOOL_PID}"
# The served run's slow-query log (threshold 0: every query) must be a
# JSON array with at least one traced query.
grep -q '"query_id"' "${OBS_DIR}/slowlog.json" || {
  echo "error: --slow-query-log produced no traced queries" >&2
  exit 1
}

if [[ "${CEM_CI_SKIP_ASAN:-0}" != "1" ]]; then
  echo "== ASAN configure (${ASAN_BUILD_DIR})"
  cmake -B "${ASAN_BUILD_DIR}" -S "${REPO_ROOT}" \
    -DCEM_SANITIZE=address -DCEM_BUILD_BENCH=OFF -DCEM_BUILD_EXAMPLES=OFF \
    "${CMAKE_EXTRA_ARGS[@]}"

  echo "== ASAN build (-j${JOBS})"
  cmake --build "${ASAN_BUILD_DIR}" -j "${JOBS}"

  echo "== ASAN ctest -L tier1"
  ctest --test-dir "${ASAN_BUILD_DIR}" -L tier1 -j "${JOBS}" --output-on-failure

  # The crash-recovery suite is the one place the code deliberately reads
  # torn, flipped and truncated bytes back in; re-run it on its own under
  # ASAN (binaries invoked directly — ctest's discovered names are
  # Suite.Case and would not match a -R on the binary name) so a decoder
  # overrun can never hide behind a flaky tier-1 shard.
  echo "== ASAN crash-recovery suite"
  "${ASAN_BUILD_DIR}/persist_test"
  "${ASAN_BUILD_DIR}/crash_recovery_test"
fi

if [[ "${CEM_CI_SKIP_TSAN:-0}" != "1" ]]; then
  echo "== TSAN configure (${TSAN_BUILD_DIR})"
  cmake -B "${TSAN_BUILD_DIR}" -S "${REPO_ROOT}" \
    -DCEM_SANITIZE=thread -DCEM_BUILD_BENCH=OFF -DCEM_BUILD_EXAMPLES=OFF \
    "${CMAKE_EXTRA_ARGS[@]}"

  echo "== TSAN build (-j${JOBS})"
  cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}"

  echo "== TSAN ctest -L concurrency"
  ctest --test-dir "${TSAN_BUILD_DIR}" -L concurrency -j "${JOBS}" \
    --output-on-failure
fi

echo "== OK"
