#!/usr/bin/env bash
# CI gate: configure + build (warnings as errors) + tier-1 tests +
# header self-containment + format check + bench smoke runs, then an
# AddressSanitizer build re-running the tier-1 suite. Run from anywhere.
# Set CEM_CI_SKIP_ASAN=1 to skip the sanitizer stage.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build-ci}"
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-${REPO_ROOT}/build-ci-asan}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== configure (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCEM_WERROR=ON

echo "== build (all targets, -j${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== header self-containment check"
cmake --build "${BUILD_DIR}" --target header_check -j "${JOBS}"

echo "== format check"
cmake --build "${BUILD_DIR}" --target format_check

echo "== ctest -L tier1"
ctest --test-dir "${BUILD_DIR}" -L tier1 -j "${JOBS}" --output-on-failure

echo "== ctest -L bench_smoke"
ctest --test-dir "${BUILD_DIR}" -L bench_smoke -j "${JOBS}" --output-on-failure

if [[ "${CEM_CI_SKIP_ASAN:-0}" != "1" ]]; then
  echo "== ASAN configure (${ASAN_BUILD_DIR})"
  cmake -B "${ASAN_BUILD_DIR}" -S "${REPO_ROOT}" \
    -DCEM_SANITIZE=address -DCEM_BUILD_BENCH=OFF -DCEM_BUILD_EXAMPLES=OFF

  echo "== ASAN build (-j${JOBS})"
  cmake --build "${ASAN_BUILD_DIR}" -j "${JOBS}"

  echo "== ASAN ctest -L tier1"
  ctest --test-dir "${ASAN_BUILD_DIR}" -L tier1 -j "${JOBS}" --output-on-failure
fi

echo "== OK"
