#!/usr/bin/env bash
# CI gate: configure + build (warnings as errors) + tier-1 tests +
# header self-containment + format check. Run from anywhere.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build-ci}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== configure (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCEM_WERROR=ON

echo "== build (all targets, -j${JOBS})"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== header self-containment check"
cmake --build "${BUILD_DIR}" --target header_check -j "${JOBS}"

echo "== format check"
cmake --build "${BUILD_DIR}" --target format_check

echo "== ctest -L tier1"
ctest --test-dir "${BUILD_DIR}" -L tier1 -j "${JOBS}" --output-on-failure

echo "== OK"
